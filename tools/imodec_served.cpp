// imodec_served — synthesis-as-a-service daemon (DESIGN.md §14, §15).
//
// A long-lived process wrapping a serve::Server: a bounded admission queue
// feeding a pool of worker threads, each with its own warm serve::Engine
// (SynthesisSession: thread pool, recycled BDD managers, NPN result cache).
// Requests are line-delimited JSON on stdin (default, served serially) or on
// a Unix stream socket (--socket, concurrent connections), responses are one
// line of JSON each, flushed immediately. Request/response schema v2
// (control verbs, `overloaded` + `retry_after_ms`): src/map/serve.hpp and
// README "Serving"; both directions validate against
// tools/check_request_json.py.
//
// Resilience (DESIGN.md §15):
//   - admission control: a full queue sheds with typed `overloaded`
//     responses instead of stalling the socket; request lines longer than
//     --max-line-bytes get a typed `usage` error and the connection lives;
//   - deadline propagation: queue wait is charged against the request's
//     timeout_ms; requests already dead at dequeue are rejected typed;
//   - graceful drain: SIGTERM/SIGINT (or the `drain` control verb) stops
//     accepting, finishes in-flight work, answers queued requests with
//     `overloaded`, closes connections, exits 0;
//   - crash containment: fatal signals dump the flight-recorder ring and a
//     final {"imodec_crash":...} line to stderr, then re-raise so the exit
//     status names the signal; --supervise forks the serving process and
//     restarts it on crashes with exponential backoff and crash-loop
//     detection, emitting {"imodec_supervisor":...} records on stderr.
//
// Usage:
//   imodec_served [options]                 # serve stdin -> stdout
//   imodec_served --socket /tmp/imodec.sock # concurrent socket service
//   imodec_served --socket /tmp/imodec.sock --supervise --pidfile /tmp/i.pid
//
// Options (the daemon's base config; requests override per field):
//   -k <n>               LUT input count (default 5)
//   --threads <n>        per-engine execution width (0 = hardware concurrency)
//   --single             single-output decomposition baseline
//   --strict             strict codes
//   --no-collapse        skip collapsing; restructure instead
//   --verify-mode <off|sim|exact|auto>
//   --max-p <n>          global class cap
//   --bound <n>          bound-set size b
//   --seed <n>           bound-set sampling seed
//   --timeout-ms <n>     per-request wall-clock deadline (0 = none)
//   --node-budget <n>    live BDD-node budget (0 = none)
//   --on-exhaustion <fail|degrade>
//   --result-cache       enable the NPN-canonical result cache
//   --cache-entries <n>  result-cache LRU capacity (default 4096)
//   --cache-max-vars <n> result-cache width cutoff (default 16)
//   --max-requests <n>   drain after n completed requests (0 = no limit)
// Serving options:
//   --workers <n>        concurrent synthesis lanes / warm engines (default 1)
//   --queue <n>          admission queue capacity (default 16)
//   --retry-after-ms <n> backoff hint in `overloaded` responses (default 50)
//   --max-line-bytes <n> request line cap (default 1048576)
//   --max-connections <n> concurrent socket connections (default 64)
//   --supervise          run under the restart supervisor (needs --socket)
//   --pidfile <path>     write the serving process pid (rewritten on restart)
//   --restart-base-ms / --restart-max-ms / --restart-stable-ms /
//   --restart-give-up    supervisor RestartPolicy knobs (serve.hpp; the
//                        chaos soak shrinks them to kill workers quickly)
//
// Exit codes: 0 on clean shutdown (EOF / request limit / drain), 2 on usage
// errors; a crashed un-supervised worker dies by its signal. The supervisor
// exits 0 after a clean worker drain, 1 when it gives up on a crash loop.
// Per-request failures never exit — they travel back as typed error
// responses (map/errors.hpp).

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "map/errors.hpp"
#include "map/serve.hpp"
#include "obs/flight.hpp"
#include "util/signals.hpp"

#ifndef _WIN32
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace imodec;

namespace {

struct DaemonOptions {
  SynthesisConfig cfg;
  serve::ServerOptions server;
  serve::RestartPolicy::Options restart;
  std::string socket_path;
  std::string pidfile;
  std::uint64_t max_requests = 0;
  std::size_t max_line_bytes = 1 << 20;
  std::size_t max_connections = 64;
  bool supervise = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-k n] [--threads n] [--single] [--strict] "
               "[--no-collapse] [--verify-mode m] [--max-p n] [--bound n] "
               "[--seed n] [--timeout-ms n] [--node-budget n] "
               "[--on-exhaustion fail|degrade] [--result-cache] "
               "[--cache-entries n] [--cache-max-vars n] [--max-requests n] "
               "[--socket path] [--workers n] [--queue n] "
               "[--retry-after-ms n] [--max-line-bytes n] "
               "[--max-connections n] [--supervise] [--pidfile path] "
               "[--restart-base-ms n] [--restart-max-ms n] "
               "[--restart-stable-ms n] [--restart-give-up n]\n",
               argv0);
  return exit_code(ErrorCode::usage);
}

/// Completed-request counter shared with the crash handler (fprintf-free
/// reads from the signal path).
std::atomic<std::uint64_t> g_completed{0};

/// Last-gasp fatal-signal callback: flight ring + one structured final line,
/// write(2)-only, then the caller re-raises (util::install_fatal_handler).
void crash_last_gasp(int signo) {
  obs::flight_dump_fd(2);
  char buf[192];
  const int len = std::snprintf(
      buf, sizeof(buf),
      "{\"imodec_crash\":{\"signal\":%d,\"signal_name\":\"%s\","
      "\"completed_requests\":%llu}}\n",
      signo, util::signal_name(signo),
      static_cast<unsigned long long>(
          g_completed.load(std::memory_order_relaxed)));
  if (len > 0) {
    std::size_t off = 0;
    while (off < static_cast<std::size_t>(len)) {
      const ssize_t w = ::write(2, buf + off, len - off);
      if (w <= 0) break;
      off += static_cast<std::size_t>(w);
    }
  }
}

/// Typed response for an oversized request line (the id is unknowable — the
/// line was never buffered whole).
std::string oversized_response(std::size_t cap) {
  obs::Json resp = obs::Json::object();
  resp["schema_version"] = serve::kWireSchemaVersion;
  resp["id"] = "";
  resp["ok"] = false;
  resp["code"] = to_string(ErrorCode::usage);
  obs::Json err = obs::Json::object();
  err["code"] = to_string(ErrorCode::usage);
  err["message"] = "request line exceeds " + std::to_string(cap) + " bytes";
  resp["error"] = std::move(err);
  return resp.dump(-1);
}

enum class LineRead { ok, oversized, eof };

/// Bounded getline: reads into `line` up to `cap` bytes. On overflow the
/// rest of the line is *discarded as it streams* (never buffered), the
/// stream stays usable, and the caller answers with a typed usage error.
LineRead read_bounded_line(std::istream& in, std::string& line,
                           std::size_t cap) {
  line.clear();
  int ch;
  while ((ch = in.get()) != std::char_traits<char>::eof()) {
    if (ch == '\n') return LineRead::ok;
    if (line.size() >= cap) {
      while ((ch = in.get()) != std::char_traits<char>::eof() && ch != '\n') {
      }
      return LineRead::oversized;
    }
    line.push_back(static_cast<char>(ch));
  }
  return line.empty() ? LineRead::eof : LineRead::ok;
}

/// stdin/stdout service: serial (one outstanding request), in request
/// order. Exits on EOF, drain signal, `drain` verb, or the request limit.
int serve_stdio(serve::Server& server, const DaemonOptions& opt) {
  std::string line;
  for (;;) {
    if (util::drain_requested() || server.draining()) break;
    if (opt.max_requests &&
        g_completed.load(std::memory_order_relaxed) >= opt.max_requests)
      break;
    const LineRead r =
        read_bounded_line(std::cin, line, opt.max_line_bytes);
    if (r == LineRead::eof) break;
    if (r == LineRead::oversized) {
      std::cout << oversized_response(opt.max_line_bytes) << '\n'
                << std::flush;
      g_completed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (line.empty()) continue;  // blank lines are keep-alive no-ops
    std::cout << server.handle(line) << '\n' << std::flush;
    g_completed.fetch_add(1, std::memory_order_relaxed);
  }
  server.drain();
  return 0;
}

#ifndef _WIN32

/// Create, bind and listen on a Unix stream socket. -1 on failure.
int make_listener(const std::string& path, int backlog) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("imodec_served: socket");
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "imodec_served: socket path too long\n");
    ::close(listener);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, backlog) < 0) {
    std::perror("imodec_served: bind/listen");
    ::close(listener);
    return -1;
  }
  return listener;
}

/// One client connection: reads bounded lines, serves each synchronously
/// (one outstanding request per connection; concurrency comes from multiple
/// connections competing for the admission queue), writes one response line
/// per request. Survives oversized lines; exits on peer close / shutdown().
class Connection {
 public:
  Connection(int fd, serve::Server& server, const DaemonOptions& opt)
      : fd_(fd), server_(server), opt_(opt) {}

  void run() {
    serve_requests();
    finished_.store(true, std::memory_order_release);
  }

  /// Half-close from the drain path: wakes the blocked read().
  void shut() { ::shutdown(fd_, SHUT_RDWR); }

  /// True once run() returned — the fd is safe to close and join.
  bool finished() const { return finished_.load(std::memory_order_acquire); }

  int fd() const { return fd_; }

 private:
  void serve_requests() {
    std::string buf;
    char chunk[4096];
    bool discarding = false;  // past-cap line being streamed to the bin
    for (;;) {
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buf.find('\n')) != std::string::npos) {
        std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        if (discarding) {
          // Tail of an oversized line; the error already went out.
          discarding = false;
          continue;
        }
        if (line.empty()) continue;
        if (line.size() > opt_.max_line_bytes) {
          write_line(oversized_response(opt_.max_line_bytes));
          g_completed.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        write_line(server_.handle(line));
        g_completed.fetch_add(1, std::memory_order_relaxed);
      }
      if (buf.size() > opt_.max_line_bytes) {
        // No newline yet and already past the cap: answer now, drop the
        // buffered prefix, and stream the rest of the line to nowhere.
        write_line(oversized_response(opt_.max_line_bytes));
        g_completed.fetch_add(1, std::memory_order_relaxed);
        buf.clear();
        discarding = true;
      }
    }
  }

  void write_line(const std::string& text) {
    const std::string out = text + "\n";
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t w = ::write(fd_, out.data() + off, out.size() - off);
      if (w <= 0) return;
      off += static_cast<std::size_t>(w);
    }
  }

  int fd_;
  serve::Server& server_;
  const DaemonOptions& opt_;
  std::atomic<bool> finished_{false};
};

/// Concurrent Unix-socket service over a pre-made listener. Accept loop
/// polls {listener, drain self-pipe}; each connection gets a thread; drain
/// (signal, verb, or request limit) stops accepting, lets the Server finish
/// in-flight work, then closes every connection. Returns the exit code.
int serve_socket(serve::Server& server, int listener,
                 const DaemonOptions& opt) {
  struct Conn {
    std::unique_ptr<Connection> c;
    std::thread t;
  };
  std::list<Conn> conns;
  std::mutex conns_mu;
  std::atomic<std::size_t> open_conns{0};

  std::fprintf(stderr, "imodec_served: listening on %s (workers=%u queue=%zu)\n",
               opt.socket_path.c_str(), server.workers(),
               opt.server.queue_capacity);

  const auto reap_finished = [&] {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->c->finished()) {
        it->t.join();
        ::close(it->c->fd());
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  };

  for (;;) {
    if (util::drain_requested() || server.draining()) break;
    if (opt.max_requests &&
        g_completed.load(std::memory_order_relaxed) >= opt.max_requests)
      break;

    pollfd fds[2];
    fds[0].fd = listener;
    fds[0].events = POLLIN;
    fds[1].fd = util::drain_fd();
    fds[1].events = POLLIN;
    const int nfds = fds[1].fd >= 0 ? 2 : 1;
    // Finite timeout: the drain verb and the request limit are flag checks,
    // not poll events.
    const int pr = ::poll(fds, nfds, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;  // signal; loop re-checks the flags
      std::perror("imodec_served: poll");
      break;
    }
    reap_finished();
    if (pr == 0 || !(fds[0].revents & POLLIN)) continue;

    const int conn_fd = ::accept(listener, nullptr, nullptr);
    if (conn_fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (open_conns.load(std::memory_order_relaxed) >= opt.max_connections) {
      // Connection-level shed: one typed line, then close. The client can
      // back off and reconnect exactly as for a queue shed.
      obs::Json resp = obs::Json::object();
      resp["schema_version"] = serve::kWireSchemaVersion;
      resp["id"] = "";
      resp["ok"] = false;
      resp["code"] = to_string(ErrorCode::overloaded);
      obs::Json err = obs::Json::object();
      err["code"] = to_string(ErrorCode::overloaded);
      err["message"] = "connection limit reached";
      err["retry_after_ms"] = opt.server.retry_after_ms;
      resp["error"] = std::move(err);
      const std::string line = resp.dump(-1) + "\n";
      [[maybe_unused]] const auto w =
          ::write(conn_fd, line.data(), line.size());
      ::close(conn_fd);
      continue;
    }

    auto connection = std::make_unique<Connection>(conn_fd, server, opt);
    Connection* raw = connection.get();
    open_conns.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu);
    conns.push_back(Conn{std::move(connection), std::thread([raw, &open_conns] {
                           raw->run();
                           open_conns.fetch_sub(1, std::memory_order_relaxed);
                         })});
  }

  // Drain: stop accepting first, then let in-flight work finish (queued
  // requests are answered `overloaded` inside Server::drain), and only then
  // hang up on the clients — every admitted request gets its response
  // before its connection goes away.
  ::close(listener);
  ::unlink(opt.socket_path.c_str());
  server.drain();
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (Conn& conn : conns) conn.c->shut();
  }
  for (;;) {
    std::unique_lock<std::mutex> lock(conns_mu);
    if (conns.empty()) break;
    Conn conn = std::move(conns.front());
    conns.pop_front();
    lock.unlock();
    if (conn.t.joinable()) conn.t.join();
    ::close(conn.c->fd());
  }
  std::fprintf(stderr, "imodec_served: drained cleanly\n");
  return 0;
}

/// Write `pid` to the pidfile (best effort; the chaos harness reads it).
void write_pidfile(const std::string& path, pid_t pid) {
  if (path.empty()) return;
  if (FILE* f = std::fopen(path.c_str(), "w")) {
    std::fprintf(f, "%d\n", static_cast<int>(pid));
    std::fclose(f);
  }
}

/// Supervisor-side globals for the forwarding signal handler.
std::atomic<pid_t> g_worker_pid{0};
std::atomic<bool> g_super_drain{false};

void supervisor_forward_signal(int signo) {
  g_super_drain.store(true, std::memory_order_relaxed);
  const pid_t pid = g_worker_pid.load(std::memory_order_relaxed);
  if (pid > 0) ::kill(pid, signo);
}

void supervisor_record(const char* event, std::uint64_t restarts, int sig,
                       int code, std::uint64_t uptime_ms,
                       std::uint64_t backoff_ms) {
  obs::Json rec = obs::Json::object();
  obs::Json body = obs::Json::object();
  body["event"] = event;
  body["restarts"] = restarts;
  if (sig) {
    body["signal"] = sig;
    body["signal_name"] = util::signal_name(sig);
  }
  if (code >= 0) body["exit_code"] = code;
  body["uptime_ms"] = uptime_ms;
  if (backoff_ms) body["backoff_ms"] = backoff_ms;
  rec["imodec_supervisor"] = std::move(body);
  std::fprintf(stderr, "%s\n", rec.dump(-1).c_str());
  std::fflush(stderr);
}

/// Restart-on-crash supervisor: forks the serving worker (which inherits
/// the already-bound listener, so client connects queue in the kernel
/// backlog across restarts), restarts crashed workers per RestartPolicy,
/// exits 0 when a worker drains cleanly and 1 on a crash loop.
int run_supervisor(const DaemonOptions& opt, int listener,
                   int (*worker_main)(const DaemonOptions&, int)) {
  serve::RestartPolicy policy(opt.restart);
  std::uint64_t restarts = 0;

  struct sigaction sa{};
  sa.sa_handler = supervisor_forward_signal;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("imodec_served: fork");
      return 1;
    }
    if (pid == 0) {
      // Worker: fresh drain handling of its own; the supervisor's
      // dispositions are replaced inside worker_main.
      const int rc = worker_main(opt, listener);
      std::_Exit(rc);
    }
    g_worker_pid.store(pid, std::memory_order_relaxed);
    write_pidfile(opt.pidfile, pid);
    if (g_super_drain.load(std::memory_order_relaxed))
      ::kill(pid, SIGTERM);  // signal raced the fork: drain the new worker

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
      if (errno != EINTR) {
        std::perror("imodec_served: waitpid");
        return 1;
      }
      // Interrupted by the forwarded signal; keep waiting for the drain.
    }
    g_worker_pid.store(0, std::memory_order_relaxed);
    const std::uint64_t uptime_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      supervisor_record("exit", restarts, 0, 0, uptime_ms, 0);
      if (!opt.pidfile.empty()) ::unlink(opt.pidfile.c_str());
      return 0;
    }
    const int sig = WIFSIGNALED(status) ? WTERMSIG(status) : 0;
    const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    const serve::RestartPolicy::Decision d = policy.on_crash(uptime_ms);
    if (d.give_up || g_super_drain.load(std::memory_order_relaxed)) {
      supervisor_record(d.give_up ? "give_up" : "exit", restarts, sig, code,
                        uptime_ms, 0);
      if (!opt.pidfile.empty()) ::unlink(opt.pidfile.c_str());
      return d.give_up ? 1 : 0;
    }
    ++restarts;
    supervisor_record("restart", restarts, sig, code, uptime_ms,
                      d.backoff_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(d.backoff_ms));
  }
}

#endif  // !_WIN32

/// The serving process proper (run directly, or as the supervisor's forked
/// worker): installs drain + crash handlers, builds the Server, serves.
int worker_main(const DaemonOptions& opt, int listener) {
  util::install_drain_handler();
  util::install_fatal_handler(&crash_last_gasp);
#ifndef _WIN32
  write_pidfile(opt.pidfile, ::getpid());
#endif

  serve::Server server(opt.cfg, opt.server);
#ifndef _WIN32
  if (listener >= 0) return serve_socket(server, listener, opt);
#else
  (void)listener;
#endif
  return serve_stdio(server, opt);
}

}  // namespace

int main(int argc, char** argv) {
  DaemonOptions opt;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-k" && i + 1 < argc) {
        opt.cfg.k = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--threads" && i + 1 < argc) {
        opt.cfg.threads = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-p" && i + 1 < argc) {
        opt.cfg.max_p = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      } else if (arg == "--bound" && i + 1 < argc) {
        opt.cfg.bound_size = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--seed" && i + 1 < argc) {
        opt.cfg.seed = std::stoull(argv[++i]);
      } else if (arg == "--timeout-ms" && i + 1 < argc) {
        opt.cfg.timeout_ms = std::stoull(argv[++i]);
      } else if (arg == "--node-budget" && i + 1 < argc) {
        opt.cfg.node_budget = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--on-exhaustion" && i + 1 < argc) {
        const auto policy = parse_on_exhaustion(argv[++i]);
        if (!policy) return usage(argv[0]);
        opt.cfg.on_exhaustion = *policy;
      } else if (arg == "--verify-mode" && i + 1 < argc) {
        const auto mode = parse_verify_mode(argv[++i]);
        if (!mode) return usage(argv[0]);
        opt.cfg.verify = *mode;
      } else if (arg == "--single") {
        opt.cfg.multi_output = false;
      } else if (arg == "--strict") {
        opt.cfg.strict = true;
      } else if (arg == "--no-collapse") {
        opt.cfg.collapse = false;
      } else if (arg == "--result-cache") {
        opt.cfg.result_cache = true;
      } else if (arg == "--cache-entries" && i + 1 < argc) {
        opt.cfg.result_cache_entries =
            static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--cache-max-vars" && i + 1 < argc) {
        opt.cfg.result_cache_max_vars =
            static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-requests" && i + 1 < argc) {
        opt.max_requests = std::stoull(argv[++i]);
      } else if (arg == "--socket" && i + 1 < argc) {
        opt.socket_path = argv[++i];
      } else if (arg == "--workers" && i + 1 < argc) {
        opt.server.workers = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--queue" && i + 1 < argc) {
        opt.server.queue_capacity =
            static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--retry-after-ms" && i + 1 < argc) {
        opt.server.retry_after_ms = std::stoull(argv[++i]);
      } else if (arg == "--max-line-bytes" && i + 1 < argc) {
        opt.max_line_bytes = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--max-connections" && i + 1 < argc) {
        opt.max_connections = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--supervise") {
        opt.supervise = true;
      } else if (arg == "--restart-base-ms" && i + 1 < argc) {
        opt.restart.base_backoff_ms = std::stoull(argv[++i]);
      } else if (arg == "--restart-max-ms" && i + 1 < argc) {
        opt.restart.max_backoff_ms = std::stoull(argv[++i]);
      } else if (arg == "--restart-stable-ms" && i + 1 < argc) {
        opt.restart.stable_uptime_ms = std::stoull(argv[++i]);
      } else if (arg == "--restart-give-up" && i + 1 < argc) {
        opt.restart.give_up_after =
            static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--pidfile" && i + 1 < argc) {
        opt.pidfile = argv[++i];
      } else {
        return usage(argv[0]);
      }
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "imodec_served: malformed numeric argument\n");
    return usage(argv[0]);
  }

  if (opt.server.workers == 0) opt.server.workers = 1;
  if (opt.max_line_bytes < 64) opt.max_line_bytes = 64;
  if (const auto diags = opt.cfg.validate(); !diags.empty()) {
    for (const auto& d : diags)
      std::fprintf(stderr, "imodec_served: invalid configuration: %s\n",
                   d.c_str());
    return exit_code(ErrorCode::usage);
  }

#ifndef _WIN32
  if (!opt.socket_path.empty()) {
    const int listener = make_listener(opt.socket_path, 16);
    if (listener < 0) return 1;
    if (opt.supervise) return run_supervisor(opt, listener, &worker_main);
    return worker_main(opt, listener);
  }
  if (opt.supervise) {
    std::fprintf(stderr, "imodec_served: --supervise requires --socket\n");
    return exit_code(ErrorCode::usage);
  }
#else
  if (!opt.socket_path.empty() || opt.supervise) {
    std::fprintf(stderr,
                 "imodec_served: --socket/--supervise unsupported on this "
                 "OS\n");
    return exit_code(ErrorCode::usage);
  }
#endif
  return worker_main(opt, -1);
}
