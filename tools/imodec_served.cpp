// imodec_served — synthesis-as-a-service daemon (DESIGN.md §14).
//
// A long-lived process wrapping one warm serve::Engine (SynthesisSession:
// thread pool, recycled BDD managers, NPN result cache): requests are
// line-delimited JSON on stdin (default) or on a Unix stream socket
// (--socket), responses are one line of JSON each, flushed immediately.
// Request/response schema: src/map/serve.hpp and README "Serving"; both
// directions validate against tools/check_request_json.py.
//
// Usage:
//   imodec_served [options]                 # serve stdin -> stdout
//   imodec_served --socket /tmp/imodec.sock # serve one connection at a time
//
// Options (the daemon's base config; requests override per field):
//   -k <n>               LUT input count (default 5)
//   --threads <n>        execution width (0 = hardware concurrency)
//   --single             single-output decomposition baseline
//   --strict             strict codes
//   --no-collapse        skip collapsing; restructure instead
//   --verify-mode <off|sim|exact|auto>
//   --max-p <n>          global class cap
//   --bound <n>          bound-set size b
//   --seed <n>           bound-set sampling seed
//   --timeout-ms <n>     per-request wall-clock deadline (0 = none)
//   --node-budget <n>    live BDD-node budget (0 = none)
//   --on-exhaustion <fail|degrade>
//   --result-cache       enable the NPN-canonical result cache
//   --cache-entries <n>  result-cache LRU capacity (default 4096)
//   --cache-max-vars <n> result-cache width cutoff (default 16)
//   --max-requests <n>   exit after n requests (test harnesses; 0 = no limit)
//
// Exit codes: 0 on clean shutdown (EOF / request limit), 2 on usage errors.
// Per-request failures never exit — they travel back as typed error
// responses (map/errors.hpp).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "map/errors.hpp"
#include "map/serve.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace imodec;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-k n] [--threads n] [--single] [--strict] "
               "[--no-collapse] [--verify-mode m] [--max-p n] [--bound n] "
               "[--seed n] [--timeout-ms n] [--node-budget n] "
               "[--on-exhaustion fail|degrade] [--result-cache] "
               "[--cache-entries n] [--cache-max-vars n] [--max-requests n] "
               "[--socket path]\n",
               argv0);
  return exit_code(ErrorCode::usage);
}

/// Serve an iostream-like pair: one request line in, one response line out.
/// Returns the number of requests handled (bounded by `limit` when > 0).
std::uint64_t serve_stream(serve::Engine& engine, std::istream& in,
                           std::ostream& out, std::uint64_t limit) {
  std::uint64_t handled = 0;
  std::string line;
  while ((limit == 0 || handled < limit) && std::getline(in, line)) {
    if (line.empty()) continue;  // blank lines are keep-alive no-ops
    out << engine.handle_line_text(line) << '\n' << std::flush;
    ++handled;
  }
  return handled;
}

#ifndef _WIN32
/// Unix-socket loop: accept connections one at a time, serve each until its
/// peer closes, stop at the request limit. Line-based framing identical to
/// the stdio mode.
int serve_socket(serve::Engine& engine, const std::string& path,
                 std::uint64_t limit) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("imodec_served: socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "imodec_served: socket path too long\n");
    ::close(listener);
    return exit_code(ErrorCode::usage);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 4) < 0) {
    std::perror("imodec_served: bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "imodec_served: listening on %s\n", path.c_str());
  std::uint64_t handled = 0;
  while (limit == 0 || handled < limit) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) break;
    std::string buf;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(conn, chunk, sizeof(chunk));
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = buf.find('\n')) != std::string::npos) {
        const std::string line = buf.substr(0, pos);
        buf.erase(0, pos + 1);
        if (line.empty()) continue;
        const std::string resp = engine.handle_line_text(line) + "\n";
        std::size_t off = 0;
        while (off < resp.size()) {
          const ssize_t w = ::write(conn, resp.data() + off, resp.size() - off);
          if (w <= 0) break;
          off += static_cast<std::size_t>(w);
        }
        if (++handled == limit && limit != 0) break;
      }
      if (limit != 0 && handled >= limit) break;
    }
    ::close(conn);
  }
  ::close(listener);
  ::unlink(path.c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  SynthesisConfig cfg;
  std::string socket_path;
  std::uint64_t max_requests = 0;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "-k" && i + 1 < argc) {
        cfg.k = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--threads" && i + 1 < argc) {
        cfg.threads = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-p" && i + 1 < argc) {
        cfg.max_p = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      } else if (arg == "--bound" && i + 1 < argc) {
        cfg.bound_size = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--seed" && i + 1 < argc) {
        cfg.seed = std::stoull(argv[++i]);
      } else if (arg == "--timeout-ms" && i + 1 < argc) {
        cfg.timeout_ms = std::stoull(argv[++i]);
      } else if (arg == "--node-budget" && i + 1 < argc) {
        cfg.node_budget = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--on-exhaustion" && i + 1 < argc) {
        const auto policy = parse_on_exhaustion(argv[++i]);
        if (!policy) return usage(argv[0]);
        cfg.on_exhaustion = *policy;
      } else if (arg == "--verify-mode" && i + 1 < argc) {
        const auto mode = parse_verify_mode(argv[++i]);
        if (!mode) return usage(argv[0]);
        cfg.verify = *mode;
      } else if (arg == "--single") {
        cfg.multi_output = false;
      } else if (arg == "--strict") {
        cfg.strict = true;
      } else if (arg == "--no-collapse") {
        cfg.collapse = false;
      } else if (arg == "--result-cache") {
        cfg.result_cache = true;
      } else if (arg == "--cache-entries" && i + 1 < argc) {
        cfg.result_cache_entries = static_cast<std::size_t>(std::stoull(argv[++i]));
      } else if (arg == "--cache-max-vars" && i + 1 < argc) {
        cfg.result_cache_max_vars = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-requests" && i + 1 < argc) {
        max_requests = std::stoull(argv[++i]);
      } else if (arg == "--socket" && i + 1 < argc) {
        socket_path = argv[++i];
      } else {
        return usage(argv[0]);
      }
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "imodec_served: malformed numeric argument\n");
    return usage(argv[0]);
  }

  if (const auto diags = cfg.validate(); !diags.empty()) {
    for (const auto& d : diags)
      std::fprintf(stderr, "imodec_served: invalid configuration: %s\n",
                   d.c_str());
    return exit_code(ErrorCode::usage);
  }

  serve::Engine engine(cfg);
  if (!socket_path.empty()) {
#ifndef _WIN32
    return serve_socket(engine, socket_path, max_requests);
#else
    std::fprintf(stderr, "imodec_served: --socket unsupported on this OS\n");
    return exit_code(ErrorCode::usage);
#endif
  }
  serve_stream(engine, std::cin, std::cout, max_requests);
  return 0;
}
