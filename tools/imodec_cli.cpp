// imodec — command-line front end to the synthesis pipeline (the role the
// IMODEC program plays inside TOS in the paper's §7).
//
// Usage:
//   imodec [options] <input.blif|input.pla|@circuit>
//
// Inputs: BLIF or PLA files (decided by extension, '.pla' vs anything else),
// or a built-in benchmark by name with a leading '@' (e.g. @rd84).
//
// Options:
//   -k <n>          LUT input count (default 5)
//   --threads <n>   execution width (0 = hardware concurrency, 1 = serial);
//                   results are identical at every width
//   --single        single-output decomposition baseline
//   --strict        strict codes (one code per compatibility class)
//   --classical     classical flow: kernel extraction + per-output mapping
//   --no-collapse   skip collapsing; restructure instead
//   --no-verify     skip the equivalence check
//   --verify-mode <off|sim|exact|auto>
//                   equivalence engine: sim = simulation (exhaustive <= 16
//                   inputs, sampled beyond), exact = BDD miter proof, auto
//                   (default) = miter within a node budget, else sim
//   --max-p <n>     global class cap
//   --bound <n>     bound-set size b
//   --seed <n>      bound-set sampling seed
//   --timeout-ms <n>     wall-clock deadline for the whole run (0 = none)
//   --node-budget <n>    live BDD-node budget per governed manager (0 = none)
//   --on-exhaustion <fail|degrade>
//                   fail (default): exit with code 4 (timeout) or 5
//                   (resource); degrade: walk the degradation ladder and
//                   still emit a complete, verified network
//   -o <file>       write the mapped network as BLIF
//   --stats         per-phase times, BDD cache behaviour and counters
//   --report <file> write the unified machine-readable run report (schema-
//                   versioned JSON: config echo, phase rollup, counters,
//                   histograms, kernel health, degradation, verify outcome,
//                   flight events); implies observability
//   --progress[=<ms>]    stderr heartbeat while the run is in flight (phase,
//                   elapsed, live nodes, budget/deadline margins); bare flag
//                   = every 1000 ms
//   --trace-json <file>    write the span tree + counters as JSON
//   --trace-chrome <file>  write a chrome://tracing / Perfetto event file
//   --list          list built-in benchmark names and exit
//
// Flags are collected into a SynthesisConfig and validated as a whole;
// invalid combinations print every diagnostic, not just the first.
//
// Exit codes (documented in README "Exit codes"):
//   0  success (network verified, or verification disabled)
//   1  verification failed, or an unclassified runtime error
//   2  usage / invalid configuration
//   3  malformed input file (ParseError; stderr names file and line)
//   4  wall-clock deadline exceeded with --on-exhaustion=fail
//   5  memory / node budget exhausted with --on-exhaustion=fail
//   6  terminal decomposition failure (defensive; the fallback ladder makes
//      this unreachable in normal operation)

#include <cstdio>
#include <cstring>
#include <string>

#include "circuits/registry.hpp"
#include "logic/blif.hpp"
#include "logic/pla.hpp"
#include "map/errors.hpp"
#include "map/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/resource.hpp"

using namespace imodec;

namespace {

// Exit codes are the numeric values of imodec::ErrorCode (map/errors.hpp) —
// the same table the daemon's JSON error responses spell out by name.
constexpr int kExitOk = exit_code(ErrorCode::ok);
constexpr int kExitFail = exit_code(ErrorCode::verify_failed);
constexpr int kExitUsage = exit_code(ErrorCode::usage);
constexpr int kExitParse = exit_code(ErrorCode::parse);
constexpr int kExitTimeout = exit_code(ErrorCode::timeout);
constexpr int kExitResource = exit_code(ErrorCode::resource);
constexpr int kExitDecompose = exit_code(ErrorCode::decompose);

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-k n] [--threads n] [--single] [--strict] "
               "[--no-collapse] [--no-verify] [--verify-mode m] [--max-p n] "
               "[--bound n] [--seed n] [--timeout-ms n] [--node-budget n] "
               "[--on-exhaustion fail|degrade] [--stats] [--report f] "
               "[--progress[=ms]] [--trace-json f] "
               "[--trace-chrome f] [-o out.blif] <input.blif|input.pla|@name>\n"
               "       %s --list\n",
               argv0, argv0);
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  SynthesisConfig cfg;
  std::string input;
  std::string output;
  bool stats = false;
  std::string trace_json_path;
  std::string trace_chrome_path;

  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-k" && i + 1 < argc) {
      cfg.k = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      cfg.threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--max-p" && i + 1 < argc) {
      cfg.max_p = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (arg == "--bound" && i + 1 < argc) {
      cfg.bound_size = static_cast<unsigned>(std::stoul(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      cfg.seed = std::stoull(argv[++i]);
    } else if (arg == "--timeout-ms" && i + 1 < argc) {
      cfg.timeout_ms = std::stoull(argv[++i]);
    } else if (arg == "--node-budget" && i + 1 < argc) {
      cfg.node_budget = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--on-exhaustion" && i + 1 < argc) {
      const auto policy = parse_on_exhaustion(argv[++i]);
      if (!policy) {
        std::fprintf(stderr,
                     "imodec: bad --on-exhaustion '%s' (fail|degrade)\n",
                     argv[i]);
        return usage(argv[0]);
      }
      cfg.on_exhaustion = *policy;
    } else if (arg == "--single") {
      cfg.multi_output = false;
    } else if (arg == "--strict") {
      cfg.strict = true;
    } else if (arg == "--classical") {
      cfg.classical = true;
    } else if (arg == "--no-collapse") {
      cfg.collapse = false;
    } else if (arg == "--no-verify") {
      cfg.verify = VerifyMode::off;
    } else if (arg == "--verify-mode" && i + 1 < argc) {
      const auto mode = parse_verify_mode(argv[++i]);
      if (!mode) {
        std::fprintf(stderr,
                     "imodec: bad --verify-mode '%s' (off|sim|exact|auto)\n",
                     argv[i]);
        return usage(argv[0]);
      }
      cfg.verify = *mode;
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--report" && i + 1 < argc) {
      cfg.report_path = argv[++i];
    } else if (arg == "--progress") {
      cfg.progress_ms = 1000;
    } else if (arg.rfind("--progress=", 0) == 0) {
      cfg.progress_ms = std::stoull(arg.substr(std::strlen("--progress=")));
    } else if (arg == "--trace-json" && i + 1 < argc) {
      trace_json_path = argv[++i];
    } else if (arg == "--trace-chrome" && i + 1 < argc) {
      trace_chrome_path = argv[++i];
    } else if (arg == "--list") {
      for (const auto& name : circuits::benchmark_names())
        std::printf("%s\n", name.c_str());
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      input = arg;
    }
  }
  } catch (const std::exception&) {
    std::fprintf(stderr, "imodec: malformed numeric argument\n");
    return usage(argv[0]);
  }
  if (input.empty()) return usage(argv[0]);

  // Validate the whole configuration up front: the user sees every problem
  // as a readable diagnostic instead of an assertion deep in the pipeline.
  if (const auto diags = cfg.validate(); !diags.empty()) {
    for (const auto& d : diags)
      std::fprintf(stderr, "imodec: invalid configuration: %s\n", d.c_str());
    return kExitUsage;
  }

  Network net;
  try {
    if (input[0] == '@') {
      const auto bench = circuits::make_benchmark(input.substr(1));
      if (!bench) {
        std::fprintf(stderr, "imodec: unknown benchmark '%s' (try --list)\n",
                     input.c_str() + 1);
        return kExitFail;
      }
      net = *bench;
    } else if (ends_with(input, ".pla")) {
      net = read_pla_file(input);
    } else {
      net = read_blif_file(input);
    }
  } catch (const ParseError& e) {
    // e.what() already carries "<FORMAT> line N: ..."; prefix the file.
    std::fprintf(stderr, "imodec: %s: %s\n", input.c_str(), e.what());
    return kExitParse;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "imodec: %s\n", e.what());
    return kExitFail;
  }

  // Any observability output requested -> record spans and counters.
  // (--report also enables observability, inside SynthesisSession.)
  const bool observe = stats || !trace_json_path.empty() ||
                       !trace_chrome_path.empty() || !cfg.report_path.empty();
  if (observe) obs::set_enabled(true);

  // The run report's "circuit" field comes from the network name; fall back
  // to the input path when the file didn't carry a model name.
  if (net.name().empty()) net.set_name(input);

  SynthesisSession session(cfg);
  Network mapped;
  DriverReport rep;
  try {
    rep = session.run(net, mapped);
  } catch (const util::Timeout& e) {
    std::fprintf(stderr,
                 "imodec: timeout: %s (deadline %llu ms; retry with "
                 "--on-exhaustion degrade for a partial-quality result)\n",
                 e.what(),
                 static_cast<unsigned long long>(cfg.timeout_ms));
    return kExitTimeout;
  } catch (const util::ResourceExhausted& e) {
    std::fprintf(stderr,
                 "imodec: resource exhausted: %s (%s; retry with "
                 "--on-exhaustion degrade for a partial-quality result)\n",
                 e.what(), util::to_string(e.kind()));
    return kExitResource;
  } catch (const std::exception& e) {
    // The flow's Shannon fallback makes a terminal decomposition failure
    // unreachable; this arm is defensive (exit code 6, documented).
    std::fprintf(stderr, "imodec: decomposition failed: %s\n", e.what());
    return kExitDecompose;
  }
  if (!stats) {
    // Tracing without --stats: keep the report compact.
    rep.spans.clear();
    rep.counters.clear();
  }
  std::fputs(format_report(net.name().empty() ? input : net.name(), rep)
                 .c_str(),
             stdout);
  // The session wrote the run report during run(); confirm like -o does.
  if (!cfg.report_path.empty())
    std::printf("wrote %s\n", cfg.report_path.c_str());

  if (observe) {
    const std::vector<obs::Span> spans = obs::Trace::global().snapshot();
    bool write_failed = false;
    if (!trace_json_path.empty()) {
      obs::Json doc = obs::Json::object();
      doc["trace"] = obs::trace_json(spans);
      doc["metrics"] = obs::Registry::instance().to_json();
      if (obs::write_json_file(trace_json_path, doc)) {
        std::printf("wrote %s\n", trace_json_path.c_str());
      } else {
        std::fprintf(stderr, "imodec: cannot write %s\n",
                     trace_json_path.c_str());
        write_failed = true;
      }
    }
    if (!trace_chrome_path.empty()) {
      if (obs::write_json_file(trace_chrome_path,
                               obs::trace_chrome_json(spans))) {
        std::printf("wrote %s\n", trace_chrome_path.c_str());
      } else {
        std::fprintf(stderr, "imodec: cannot write %s\n",
                     trace_chrome_path.c_str());
        write_failed = true;
      }
    }
    if (write_failed) return kExitFail;
  }

  if (!output.empty()) {
    try {
      write_blif_file(output, mapped);
      std::printf("wrote %s\n", output.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "imodec: %s\n", e.what());
      return kExitFail;
    }
  }
  return rep.verified ? kExitOk : kExitFail;
}
