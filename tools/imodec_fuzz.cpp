// imodec_fuzz — differential fuzzer for the synthesis pipeline.
//
// Generates seeded random multi-output PLA cases, runs each through the
// full flow under a matrix of configurations (serial and 8-wide), and
// cross-checks: mapped ≡ input by BDD miter, serial vs parallel networks
// bit-identical, and DecomposeError recovery paths still equivalent.
// Failures are shrunk to minimal repros and written as .pla + config files.
//
// Usage:
//   imodec_fuzz [--seed n] [--cases n] [--min-inputs n] [--max-inputs n]
//               [--max-outputs n] [--max-cubes n] [--no-shrink]
//               [--out-dir dir] [--max-failures n] [-v]
//   imodec_fuzz --faults [--seed n] [--min-points n] [--circuits a,b,...] [-v]
//
// --faults switches to the deterministic fault-injection sweep
// (verify/faultsweep.hpp): count the injection points each corpus circuit
// exposes, then replay governed synthesis with a fault armed at sampled
// sites, asserting every run ends in a miter-proven network or a clean typed
// error. Requires an IMODEC_FAULT_INJECTION build (ctest's `faults` label
// runs it this way under ASan).
//
// Exit status: 0 when every check passed, 1 on any failure, 2 on usage
// errors. A fixed --seed reproduces the exact case stream (ctest runs the
// `fuzz_smoke` configuration this way).

#include <cstdio>
#include <string>
#include <vector>

#include "verify/faultsweep.hpp"
#include "verify/fuzz.hpp"

using namespace imodec;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed n] [--cases n] [--min-inputs n] "
               "[--max-inputs n] [--max-outputs n] [--max-cubes n] "
               "[--no-shrink] [--out-dir dir] [--max-failures n] [-v]\n"
               "       %s --faults [--seed n] [--min-points n] "
               "[--circuits a,b,...] [-v]\n",
               argv0, argv0);
  return 2;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int run_faults_mode(int argc, char** argv) {
  verify::FaultSweepOptions opts;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--faults") {
        // mode flag, consumed by main()
      } else if (arg == "--seed" && i + 1 < argc) {
        opts.seed = std::stoull(argv[++i]);
      } else if (arg == "--min-points" && i + 1 < argc) {
        opts.min_points = std::stoull(argv[++i]);
      } else if (arg == "--circuits" && i + 1 < argc) {
        opts.circuits = split_commas(argv[++i]);
      } else if (arg == "-v") {
        opts.verbose = true;
      } else {
        return usage(argv[0]);
      }
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "imodec_fuzz: malformed numeric argument\n");
    return usage(argv[0]);
  }
  const verify::FaultSweepReport rep = verify::run_fault_sweep(opts);
  std::fputs(verify::format_fault_sweep_report(rep).c_str(), stdout);
  return rep.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--faults") return run_faults_mode(argc, argv);

  verify::FuzzOptions opts;
  bool verbose = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--seed" && i + 1 < argc) {
        opts.seed = std::stoull(argv[++i]);
      } else if (arg == "--cases" && i + 1 < argc) {
        opts.cases = std::stoull(argv[++i]);
      } else if (arg == "--min-inputs" && i + 1 < argc) {
        opts.gen.min_inputs = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-inputs" && i + 1 < argc) {
        opts.gen.max_inputs = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-outputs" && i + 1 < argc) {
        opts.gen.max_outputs = static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-cubes" && i + 1 < argc) {
        opts.gen.max_cubes_per_output =
            static_cast<unsigned>(std::stoul(argv[++i]));
      } else if (arg == "--max-failures" && i + 1 < argc) {
        opts.max_failures = std::stoull(argv[++i]);
      } else if (arg == "--no-shrink") {
        opts.shrink = false;
      } else if (arg == "--out-dir" && i + 1 < argc) {
        opts.out_dir = argv[++i];
      } else if (arg == "-v") {
        verbose = true;
      } else {
        return usage(argv[0]);
      }
    }
  } catch (const std::exception&) {
    std::fprintf(stderr, "imodec_fuzz: malformed numeric argument\n");
    return usage(argv[0]);
  }
  if (opts.gen.min_inputs == 0 || opts.gen.min_inputs > opts.gen.max_inputs ||
      opts.gen.max_inputs > 16) {
    std::fprintf(stderr,
                 "imodec_fuzz: need 1 <= min-inputs <= max-inputs <= 16\n");
    return 2;
  }

  if (verbose) {
    std::printf("seed=0x%llx cases=%zu inputs=[%u,%u] outputs<=%u shrink=%s\n",
                static_cast<unsigned long long>(opts.seed), opts.cases,
                opts.gen.min_inputs, opts.gen.max_inputs,
                opts.gen.max_outputs, opts.shrink ? "on" : "off");
  }
  const verify::FuzzReport rep = verify::run_fuzz(opts);
  std::fputs(verify::format_fuzz_report(rep).c_str(), stdout);
  return rep.ok() ? 0 : 1;
}
