#!/usr/bin/env python3
"""Observability overhead smoke: run a bench_micro slice twice — default
(obs off) and with --obs (histograms, counters, spans recording) — and gate
on the geomean wall-time ratio.

Usage:
  obs_overhead.py --bench <path/to/bench_micro>
                  [--filter REGEX] [--min-time 0.05] [--repeats 3]
                  [--threshold 1.03] [--retries 0] [--out BENCH_obs.json]

The contract is the suite geomean, not any single benchmark (individual
microbenches are too noisy on shared machines): obs-on must cost <= 3% over
obs-off by default. Each configuration runs --repeats times, interleaved,
and the per-benchmark minimum is compared — the min discards interference
spikes (scheduler preemption, cache pollution from neighbours) that would
otherwise swamp a few-percent signal. The instrumented hot paths hoist
their histogram lookups and pay two clock reads per multi-microsecond unit
of work, so a failure here means an instrumentation site leaked into a
tight loop.

A few-percent gate on a shared CI box is inherently load-sensitive: a noisy
co-tenant during just one side of the interleave can push the geomean past
the threshold with no regression present. --retries N re-measures from
scratch up to N extra times, but only after a failing attempt — a passing
first attempt never re-runs, so the gate stays one measurement long in the
common case, and a genuine instrumentation leak still fails every attempt.

--out writes a bench-JSON document (bench "obs_overhead", validated by
check_bench_json.py) with one record per benchmark — "seconds" is the
obs-off time, "seconds_obs" the obs-on time, "overhead" their ratio — plus a
"_geomean" summary record. The committed seed lives at
bench/baselines/BENCH_obs.json.
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

# Slice that crosses every instrumented layer: the engine worked example and
# random vectors (engine.round_us, bdd.* depth histograms), the pooled flow
# (varpart.candidate_us), and the width-12 BDD-op suite (kernel op classes).
DEFAULT_FILTER = ("BM_EngineWorkedExample|BM_EngineRandomVector/.*|"
                  "BM_FlowPooled|BM_BddOp.*/12")


def run_bench(bench, bench_filter, min_time, obs):
    fd, out = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    cmd = [
        bench,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--json",
        out,
    ]
    if obs:
        cmd.append("--obs")
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(f"obs_overhead: bench run failed ({proc.returncode})",
              file=sys.stderr)
        sys.exit(1)
    with open(out, encoding="utf-8") as f:
        doc = json.load(f)
    os.unlink(out)
    return {
        r["circuit"]: r["seconds"]
        for r in doc["records"]
        if not r["circuit"].startswith("_")
    }


def merge_min(acc, run):
    for name, seconds in run.items():
        if name not in acc or seconds < acc[name]:
            acc[name] = seconds


def measure(args):
    """One full interleaved measurement: (geomean, records), or (None, [])
    when the two configurations share no benchmarks."""
    # Interleave the configurations so slow machine-wide drift (thermal,
    # co-tenants ramping up) hits both sides alike.
    plain, obs = {}, {}
    for _ in range(max(1, args.repeats)):
        merge_min(plain, run_bench(args.bench, args.filter, args.min_time,
                                   obs=False))
        merge_min(obs, run_bench(args.bench, args.filter, args.min_time,
                                 obs=True))
    common = sorted(set(plain) & set(obs))
    if not common:
        return None, []

    ratios = []
    records = []
    for name in common:
        ratio = obs[name] / plain[name]
        ratios.append(ratio)
        records.append({
            "circuit": name,
            "seconds": plain[name],
            "seconds_obs": obs[name],
            "overhead": ratio,
        })
        print(f"obs_overhead: {name:32s} {plain[name] * 1e6:10.2f} -> "
              f"{obs[name] * 1e6:10.2f} us  ({ratio:5.3f}x)")
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    print(f"obs_overhead: geomean {geomean:.3f}x over {len(common)} "
          f"benchmarks (threshold {args.threshold:.2f})")
    records.append({"circuit": "_geomean", "seconds": 0.0,
                    "overhead": geomean})
    return geomean, records


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True)
    ap.add_argument("--filter", default=DEFAULT_FILTER)
    ap.add_argument("--min-time", default="0.05")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--threshold", type=float, default=1.03)
    ap.add_argument("--retries", type=int, default=0,
                    help="re-measure up to N extra times after a failing "
                         "attempt (interference tolerance; a real "
                         "regression fails every attempt)")
    ap.add_argument("--out", default=None)
    args = ap.parse_args()

    attempts = 1 + max(0, args.retries)
    geomean, records = None, []
    for attempt in range(attempts):
        if attempt:
            print(f"obs_overhead: attempt {attempt} failed the gate; "
                  f"re-measuring ({attempt + 1}/{attempts}) — suspected "
                  f"machine-load interference")
        geomean, records = measure(args)
        if geomean is None:
            print("obs_overhead: no benchmarks in common between the two "
                  "runs", file=sys.stderr)
            return 1
        if geomean <= args.threshold:
            break

    if args.out:
        doc = {"bench": "obs_overhead", "schema_version": 1,
               "records": records}
        with open(args.out, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"obs_overhead: wrote {args.out}")

    if geomean > args.threshold:
        print(f"obs_overhead: FAIL — observability overhead "
              f"{(geomean - 1) * 100:.1f}% exceeds "
              f"{(args.threshold - 1) * 100:.0f}% on every attempt "
              f"({attempts})", file=sys.stderr)
        return 1
    print("obs_overhead: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
