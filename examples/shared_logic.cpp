// Demonstrates *why* multiple-output decomposition wins: builds an adder /
// comparator pair over the same operands (a classic datapath scenario where
// outputs share bound-set structure), decomposes the vector jointly and
// separately, and prints the shared decomposition functions with the LUT
// counts side by side.
//
//   $ ./shared_logic

#include <cstdio>

#include "decomp/single.hpp"
#include "imodec/engine.hpp"
#include "imodec/counting.hpp"
#include "logic/cube.hpp"

using namespace imodec;

int main() {
  // Three outputs over 8 inputs: a 4+4 adder's bit 3, its carry-out, and the
  // a == b comparator. All depend heavily on the same operand bits.
  const unsigned n = 8;
  TruthTable sum3(n), cout(n), eq(n);
  for (std::uint64_t v = 0; v < (1u << n); ++v) {
    const unsigned a = v & 15, b = (v >> 4) & 15;
    sum3.set(v, ((a + b) >> 3) & 1);
    cout.set(v, ((a + b) >> 4) & 1);
    eq.set(v, a == b);
  }
  const std::vector<TruthTable> fs{sum3, cout, eq};

  // Bound set: the low three bits of each operand (where the shared carry /
  // equality structure lives).
  VarPartition vp;
  vp.bound = {0, 1, 2, 4, 5, 6};
  vp.free_set = {3, 7};

  ImodecStats stats;
  const auto dec = decompose_multi_output(fs, vp, {}, &stats);
  if (!dec) {
    std::printf("p exceeded the engine limit\n");
    return 1;
  }

  std::printf("outputs: sum[3], carry-out, (a == b) of a 4+4 adder\n");
  std::printf("bound set: a[0..2], b[0..2]; free set: a[3], b[3]\n\n");
  std::printf("local classes l_k: ");
  for (auto l : stats.l_k) std::printf("%u ", l);
  std::printf(" -> codewidths c_k: ");
  for (auto c : stats.c_k) std::printf("%u ", c);
  std::printf("\nglobal classes p = %u\n\n", stats.p);

  const unsigned separate = sum_codewidths(fs, vp);
  std::printf("separate decomposition: %u bound-set functions\n", separate);
  std::printf("IMODEC (shared)       : %u bound-set functions\n", dec->q());
  std::printf("saved                 : %u LUT-sized functions\n\n",
              separate - dec->q());

  const auto names = std::vector<std::string>{"a0", "a1", "a2",
                                              "b0", "b1", "b2"};
  for (unsigned j = 0; j < dec->q(); ++j) {
    std::printf("d%u = %s\n", j,
                isop(dec->d_funcs[j]).to_algebraic(names).c_str());
  }
  std::printf("\n");
  for (std::size_t k = 0; k < fs.size(); ++k) {
    static const char* out_names[] = {"sum3", "cout", "eq"};
    std::printf("%5s uses:", out_names[k]);
    for (unsigned idx : dec->outputs[k].d_index) std::printf(" d%u", idx);
    std::printf("\n");
  }

  // Table-1-style characteristics for this vector.
  const auto ch = characterize_vector(fs, vp);
  std::printf("\ncharacteristics (Table 1 style):\n");
  std::printf("  bound 2^(2^b) = %s constructable bound 2^p = %s\n",
              ch.assignable_bound.to_string().c_str(),
              ch.preferable_bound.to_string().c_str());
  for (std::size_t k = 0; k < fs.size(); ++k)
    std::printf("  output %zu: l=%u  #assignable=%s  #preferable=%s\n", k,
                ch.l_k[k], ch.assignable[k].to_string().c_str(),
                ch.preferable[k].to_string().c_str());

  // Verify.
  for (std::size_t k = 0; k < fs.size(); ++k) {
    if (recompose(*dec, k, n) != fs[k]) {
      std::printf("VERIFICATION FAILED (output %zu)\n", k);
      return 1;
    }
  }
  std::printf("\nverified: all outputs recompose exactly\n");
  return 0;
}
