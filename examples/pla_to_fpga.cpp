// From a two-level PLA description to a mapped FPGA netlist, entirely in
// library calls: parse a PLA, minimize its covers, run the IMODEC pipeline,
// and emit BLIF — the end-to-end path a user with real benchmark files
// would take (`imodec file.pla -o mapped.blif` does the same via the CLI).
//
//   $ ./pla_to_fpga [out.blif]

#include <cstdio>
#include <sstream>

#include "logic/blif.hpp"
#include "logic/minimize.hpp"
#include "logic/pla.hpp"
#include "map/driver.hpp"

using namespace imodec;

namespace {

// A small seven-segment-style decoder PLA (4-bit value -> 7 segments),
// written exactly as an espresso input file would be.
const char* kPla = R"(.i 4
.o 7
.ilb v0 v1 v2 v3
.ob a b c d e f g
# segments for digits 0-9, blank above
0000 1111110
1000 0110000
0100 1101101
1100 1111001
0010 0110011
1010 1011011
0110 1011111
1110 1110000
0001 1111111
1001 1111011
.e
)";

}  // namespace

int main(int argc, char** argv) {
  std::istringstream in(kPla);
  const Network pla = read_pla(in, "seg7");
  std::printf("parsed PLA: %zu inputs, %zu outputs\n", pla.num_inputs(),
              pla.num_outputs());

  // Show what two-level minimization does to the covers.
  unsigned before = 0, after = 0;
  for (SigId o : pla.outputs()) {
    const TruthTable& f = pla.node(o).func;
    before += isop(f).num_literals();
    after += minimize_cover(f).num_literals();
  }
  std::printf("SOP literals: %u (ISOP) -> %u (minimized)\n", before, after);

  // Map to 5-input LUTs / XC3000 CLBs with the full pipeline.
  SynthesisConfig opts;
  Network mapped;
  const DriverReport rep = run_synthesis(pla, opts, mapped);
  std::fputs(format_report("seg7", rep).c_str(), stdout);

  // Compare against the single-output baseline.
  SynthesisConfig single;
  single.multi_output = false;
  Network mapped_single;
  const DriverReport rs = run_synthesis(pla, single, mapped_single);
  std::printf("single-output baseline: %u CLBs (multi-output: %u)\n",
              rs.clbs.clbs, rep.clbs.clbs);

  if (argc > 1) {
    write_blif_file(argv[1], mapped);
    std::printf("wrote %s\n", argv[1]);
  }
  return rep.verified && rs.verified ? 0 : 1;
}
