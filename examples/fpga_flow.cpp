// End-to-end FPGA synthesis flow on a named benchmark: collapse (or
// restructure when collapsing is infeasible), decompose to 5-input LUTs with
// IMODEC, pack into XC3000 CLBs, verify equivalence, and optionally dump the
// mapped network as BLIF.
//
//   $ ./fpga_flow [circuit] [--single] [--blif out.blif]
//
// Default circuit: rd84. Use --single for the single-output baseline.

#include <cstdio>
#include <cstring>
#include <string>

#include "circuits/registry.hpp"
#include "logic/blif.hpp"
#include "logic/simulate.hpp"
#include "map/lutflow.hpp"
#include "map/restructure.hpp"
#include "map/xc3000.hpp"

using namespace imodec;

int main(int argc, char** argv) {
  std::string name = "rd84";
  std::string blif_out;
  bool multi = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--single") == 0) {
      multi = false;
    } else if (std::strcmp(argv[i], "--blif") == 0 && i + 1 < argc) {
      blif_out = argv[++i];
    } else {
      name = argv[i];
    }
  }

  const auto net = circuits::make_benchmark(name);
  if (!net) {
    std::printf("unknown circuit '%s'; known:", name.c_str());
    for (const auto& n : circuits::benchmark_names())
      std::printf(" %s", n.c_str());
    std::printf("\n");
    return 1;
  }
  std::printf("%s: %zu inputs, %zu outputs, %zu logic nodes, depth %u\n",
              name.c_str(), net->num_inputs(), net->num_outputs(),
              net->logic_count(), net->depth());

  // Starting point: collapsed if possible (the paper's default), otherwise
  // the restructured network (the paper's '*' circuits).
  Network start(name);
  if (auto collapsed = collapse_network(*net)) {
    start = std::move(*collapsed);
    std::printf("collapsed network: %zu nodes\n", start.logic_count());
  } else {
    start = restructure(*net);
    std::printf("could not collapse (cone too wide) -> restructured: "
                "%zu nodes, max fanin %u\n",
                start.logic_count(), start.max_fanin());
  }

  FlowOptions opts;
  opts.multi_output = multi;
  const FlowResult result = decompose_to_luts(start, opts);
  const ClbPacking packing = pack_xc3000(result.network);

  std::printf("mode: %s\n", multi ? "multiple-output (IMODEC)"
                                  : "single-output baseline");
  std::printf("5-feasible LUTs : %u\n", result.stats.luts);
  std::printf("XC3000 CLBs     : %u (%u paired FG, %u single F)\n",
              packing.clbs, packing.paired_blocks,
              packing.single_function_blocks);
  std::printf("vectors decomposed: %u, max m = %u, max p = %u, "
              "functions saved by sharing = %u\n",
              result.stats.vectors, result.stats.max_m, result.stats.max_p,
              result.stats.shared_functions);
  std::printf("flow time       : %.3f s\n", result.stats.seconds);

  const auto eq = check_equivalence(*net, result.network);
  std::printf("equivalence     : %s (%s)\n",
              eq.equivalent ? "PASS" : "FAIL",
              eq.exhaustive ? "exhaustive" : "random vectors");

  if (!blif_out.empty()) {
    write_blif_file(blif_out, result.network);
    std::printf("wrote %s\n", blif_out.c_str());
  }
  return eq.equivalent ? 0 : 1;
}
