// Quickstart: decompose a small multiple-output function with IMODEC and
// print what happened.
//
// Builds the rd53 circuit (5 inputs, 3 outputs: the binary count of ones),
// collapses it, runs multiple-output functional decomposition with 4-input
// LUT targets, and prints the shared decomposition functions — the scenario
// of the paper's Fig. 1.
//
//   $ ./quickstart

#include <cstdio>

#include "circuits/registry.hpp"
#include "decomp/single.hpp"
#include "imodec/engine.hpp"
#include "logic/cube.hpp"
#include "logic/simulate.hpp"
#include "map/lutflow.hpp"

using namespace imodec;

int main() {
  // 1. A multiple-output function: rd53 (outputs = popcount bits).
  const Network rd53 = *circuits::make_benchmark("rd53");
  std::printf("rd53: %zu inputs, %zu outputs\n", rd53.num_inputs(),
              rd53.num_outputs());

  // 2. Collapse each output to a truth table over the primary inputs (a
  //    common variable space for the whole vector).
  std::vector<TruthTable> outputs;
  for (SigId o : rd53.outputs())
    outputs.push_back(*rd53.cone_function(o, rd53.inputs()));

  // 3. Choose a bound set of 4 variables and decompose all outputs at once.
  VarPartition vp;
  vp.bound = {0, 1, 2, 3};
  vp.free_set = {4};
  ImodecStats stats;
  const auto dec = decompose_multi_output(outputs, vp, {}, &stats);
  if (!dec) {
    std::printf("decomposition aborted (p too large)\n");
    return 1;
  }

  // 4. Report.
  std::printf("bound set {x0..x3}, free set {x4}\n");
  std::printf("local classes per output: ");
  for (auto l : stats.l_k) std::printf("%u ", l);
  std::printf("\nglobal classes p = %u\n", stats.p);
  std::printf("single-output decomposition would need %u functions\n",
              sum_codewidths(outputs, vp));
  std::printf("IMODEC found q = %u shared decomposition functions:\n",
              dec->q());
  const auto names = default_var_names(4, "x");
  for (unsigned j = 0; j < dec->q(); ++j) {
    std::printf("  d%u(x) = %s\n", j,
                isop(dec->d_funcs[j]).to_algebraic(names).c_str());
  }
  for (std::size_t k = 0; k < dec->outputs.size(); ++k) {
    std::printf("  output %zu uses d-functions:", k);
    for (unsigned idx : dec->outputs[k].d_index) std::printf(" d%u", idx);
    std::printf("\n");
  }

  // 5. Verify by recomposition.
  for (std::size_t k = 0; k < outputs.size(); ++k) {
    if (recompose(*dec, k, 5) != outputs[k]) {
      std::printf("VERIFICATION FAILED for output %zu\n", k);
      return 1;
    }
  }
  std::printf("verified: g_k(d(x), y) == f_k(x, y) for every output\n");
  return 0;
}
