// Reproduces the paper's running example (Figs. 2, 3, 5; Examples 1-7):
// prints the decomposition charts of f1 and f2, the local and global
// partitions, the implicit characteristic functions of preferable
// decomposition functions, the covering table of Fig. 5, the Lmax choice,
// and the final shared decomposition.
//
//   $ ./paper_example

#include <cstdio>

#include "decomp/chart.hpp"
#include "decomp/classes.hpp"
#include "decomp/single.hpp"
#include "imodec/chi.hpp"
#include "imodec/engine.hpp"
#include "imodec/lmax.hpp"
#include "logic/cube.hpp"

using namespace imodec;

namespace {

TruthTable from_chart(const char* r00, const char* r01, const char* r10,
                      const char* r11) {
  const char* rows[4] = {r00, r01, r10, r11};
  TruthTable f(5);
  for (unsigned y = 0; y < 4; ++y)
    for (unsigned col = 0; col < 8; ++col) {
      const unsigned x1 = (col >> 2) & 1, x2 = (col >> 1) & 1, x3 = col & 1;
      f.set(x1 | (x2 << 1) | (x3 << 2) | ((y & 1) << 3) |
                (static_cast<std::uint64_t>(y >> 1) << 4),
            rows[y][col] == '1');
    }
  return f;
}

OutputState make_state(const VertexPartition& local,
                       const VertexPartition& global) {
  OutputState st;
  st.codewidth = codewidth(local.num_classes);
  st.blocks.resize(1);
  for (std::uint32_t g = 0; g < global.num_classes; ++g)
    st.blocks[0].push_back(g);
  st.local_of_global.resize(global.num_classes);
  for (std::uint64_t v = 0; v < global.num_vertices(); ++v)
    st.local_of_global[global.class_of[v]] = local.class_of[v];
  return st;
}

void print_onset(const char* name, const bdd::Bdd& chi, unsigned p) {
  std::printf("%s onset (z-vertices, z1..z%u):\n", name, p);
  chi.manager()->foreach_minterm(
      chi.node(), {0, 1, 2, 3, 4}, [&](const std::vector<bool>& z) {
        std::printf("  ");
        for (unsigned i = 0; i < p; ++i) std::printf("%d", z[i] ? 1 : 0);
        std::printf("  = onset {");
        bool first = true;
        for (unsigned i = 0; i < p; ++i) {
          if (!z[i]) continue;
          std::printf("%sG%u", first ? "" : ",", i + 1);
          first = false;
        }
        std::printf("}\n");
        return true;
      });
}

}  // namespace

int main() {
  // Fig. 2: the decomposition charts.
  const TruthTable f1 =
      from_chart("00010111", "11111110", "11111110", "00010110");
  const TruthTable f2 =
      from_chart("00010101", "01111110", "01111110", "11101010");
  VarPartition vp;
  vp.bound = {0, 1, 2};
  vp.free_set = {3, 4};

  std::printf("=== Fig. 2a: decomposition chart of f1 ===\n%s\n",
              render_chart(f1, vp).c_str());
  std::printf("=== Fig. 2b: decomposition chart of f2 ===\n%s\n",
              render_chart(f2, vp).c_str());

  // Examples 1 and 3: local and global partitions.
  const VertexPartition l1 = local_partition_tt(f1, vp);
  const VertexPartition l2 = local_partition_tt(f2, vp);
  std::printf("=== Example 1: local partition of f1 (vertices x1x2x3) ===\n%s",
              render_partition(l1).c_str());
  std::printf("=== local partition of f2 ===\n%s", render_partition(l2).c_str());
  const VertexPartition global = global_partition({l1, l2});
  std::printf("=== Example 3: global partition (p = %u) ===\n%s\n",
              global.num_classes, render_partition(global).c_str());

  // Example 5: implicit characteristic functions.
  bdd::Manager mgr(global.num_classes);
  const OutputState s1 = make_state(l1, global);
  const OutputState s2 = make_state(l2, global);
  const bdd::Bdd chi1 = build_chi(mgr, global.num_classes, s1);
  const bdd::Bdd chi2 = build_chi(mgr, global.num_classes, s2);
  std::printf("=== Example 5 / Fig. 5: preferable d-functions ===\n");
  print_onset("chi_1", chi1, global.num_classes);
  print_onset("chi_2", chi2, global.num_classes);
  std::printf("|chi_1| = %.0f, |chi_2| = %.0f, shared = %.0f\n\n",
              chi1.sat_count() / 1.0, chi2.sat_count() / 1.0,
              (chi1 & chi2).sat_count());

  // Example 6: the Lmax choice.
  const LmaxResult pick = lmax(mgr, global.num_classes, {chi1, chi2});
  std::printf("=== Example 6: Lmax picks z-mask 0x%llx, preferable for %u "
              "outputs ===\n",
              static_cast<unsigned long long>(pick.z_mask), pick.coverage);
  TruthTable d(3);
  for (std::uint64_t x = 0; x < 8; ++x)
    d.set(x, (pick.z_mask >> global.class_of[x]) & 1);
  std::printf("d(x) = %s\n\n",
              isop(d).to_algebraic({"x1", "x2", "x3"}).c_str());

  // Example 7: the complete greedy run.
  ImodecStats stats;
  const auto dec = decompose_multi_output({f1, f2}, vp, {}, &stats);
  std::printf("=== Example 7: complete decomposition ===\n");
  std::printf("q = %u decomposition functions (Property 1 bound: %u)\n",
              dec->q(), codewidth(stats.p));
  const std::vector<std::string> xn{"x1", "x2", "x3"};
  for (unsigned j = 0; j < dec->q(); ++j)
    std::printf("d%u(x) = %s\n", j + 1,
                isop(dec->d_funcs[j]).to_algebraic(xn).c_str());
  for (int k = 0; k < 2; ++k) {
    std::printf("f%d = g%d(", k + 1, k + 1);
    for (std::size_t i = 0; i < dec->outputs[k].d_index.size(); ++i)
      std::printf("%sd%u", i ? ", " : "", dec->outputs[k].d_index[i] + 1);
    std::printf(", y1, y2)\n");
  }

  const bool ok =
      recompose(*dec, 0, 5) == f1 && recompose(*dec, 1, 5) == f2;
  std::printf("\nrecomposition check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
