// Microbenchmarks (google-benchmark) for the kernels the paper's CPU-time
// discussion hinges on: BDD operations, the subset threshold, characteristic
// function construction, Lmax, local/global class extraction, and a full
// engine run on the worked example.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>
#include <thread>

#include "bdd/bdd.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "decomp/classes.hpp"
#include "imodec/chi.hpp"
#include "imodec/engine.hpp"
#include "imodec/lmax.hpp"
#include "imodec/subset.hpp"
#include "circuits/registry.hpp"
#include "logic/minimize.hpp"
#include "map/lutflow.hpp"
#include "opt/extract.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace imodec;
using bdd::Bdd;
using bdd::Manager;

unsigned g_threads = 1;  // set by --threads; width of BM_FlowPooled's pool

TruthTable random_table(unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  TruthTable t(n);
  for (std::uint64_t row = 0; row < t.num_rows(); ++row)
    t.set(row, rng.coin());
  return t;
}

void BM_BddIte(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    Manager mgr(n);
    Bdd acc = Bdd::zero(mgr);
    for (unsigned v = 0; v + 1 < n; ++v)
      acc = acc | (Bdd::var(mgr, v) & Bdd::var(mgr, v + 1));
    benchmark::DoNotOptimize(acc.dag_size());
  }
}
BENCHMARK(BM_BddIte)->Arg(16)->Arg(32)->Arg(64);

// --- BDD-op throughput suite -------------------------------------------------
// Each iteration builds seeded random functions (unions of random cubes) in a
// fresh manager, then runs a fixed batch of kernel operations on them;
// SetItemsProcessed counts the batch so google-benchmark reports ops/sec
// (surfaced as "ops_per_sec" in the bench JSON). Fresh managers keep the
// computed table cold across iterations, so the numbers track real
// construction work, not just cache lookups.

constexpr unsigned kBddOpFuncs = 12;
constexpr unsigned kBddOpCubes = 16;

std::vector<Bdd> random_bdds(Manager& mgr, unsigned n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Bdd> fs;
  fs.reserve(kBddOpFuncs);
  for (unsigned i = 0; i < kBddOpFuncs; ++i) {
    Bdd f = Bdd::zero(mgr);
    for (unsigned c = 0; c < kBddOpCubes; ++c) {
      std::vector<unsigned> vars;
      std::vector<bool> phases;
      for (unsigned v = 0; v < n; ++v) {
        if (rng.chance(1, 3)) {
          vars.push_back(v);
          phases.push_back(rng.coin());
        }
      }
      f = f | Bdd::cube(mgr, vars, phases);
    }
    fs.push_back(f);
  }
  return fs;
}

void BM_BddOpAnd(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  std::int64_t ops = 0;
  for (auto _ : state) {
    Manager mgr(n);
    const std::vector<Bdd> fs = random_bdds(mgr, n, 0xB00A + n);
    for (unsigned i = 0; i < kBddOpFuncs; ++i)
      for (unsigned j = i + 1; j < kBddOpFuncs; ++j) {
        benchmark::DoNotOptimize((fs[i] & fs[j]).node());
        ++ops;
      }
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_BddOpAnd)->Arg(12)->Arg(18)->Arg(24);

void BM_BddOpXor(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  std::int64_t ops = 0;
  for (auto _ : state) {
    Manager mgr(n);
    const std::vector<Bdd> fs = random_bdds(mgr, n, 0xB00B + n);
    for (unsigned i = 0; i < kBddOpFuncs; ++i)
      for (unsigned j = i + 1; j < kBddOpFuncs; ++j) {
        benchmark::DoNotOptimize((fs[i] ^ fs[j]).node());
        ++ops;
      }
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_BddOpXor)->Arg(12)->Arg(18)->Arg(24);

void BM_BddOpIte(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  std::int64_t ops = 0;
  for (auto _ : state) {
    Manager mgr(n);
    const std::vector<Bdd> fs = random_bdds(mgr, n, 0xB00C + n);
    for (unsigned i = 0; i < kBddOpFuncs; ++i)
      for (unsigned j = i + 1; j < kBddOpFuncs; ++j) {
        benchmark::DoNotOptimize(
            fs[i].ite(fs[j], fs[(i + j) % kBddOpFuncs]).node());
        ++ops;
      }
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_BddOpIte)->Arg(12)->Arg(18)->Arg(24);

void BM_BddOpExists(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  std::vector<std::vector<unsigned>> var_sets(3);
  for (unsigned v = 0; v < n; ++v) {
    if (v % 2 == 0) var_sets[0].push_back(v);
    if (v % 2 == 1) var_sets[1].push_back(v);
    if (v < n / 2) var_sets[2].push_back(v);
  }
  std::int64_t ops = 0;
  for (auto _ : state) {
    Manager mgr(n);
    const std::vector<Bdd> fs = random_bdds(mgr, n, 0xB00D + n);
    for (const Bdd& f : fs)
      for (const auto& vars : var_sets) {
        benchmark::DoNotOptimize(f.exists(vars).node());
        ++ops;
      }
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_BddOpExists)->Arg(12)->Arg(18)->Arg(24);

void BM_BddOpCompose(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  std::int64_t ops = 0;
  for (auto _ : state) {
    Manager mgr(n);
    const std::vector<Bdd> fs = random_bdds(mgr, n, 0xB00E + n);
    for (unsigned i = 0; i < kBddOpFuncs; ++i)
      for (unsigned j = i + 1; j < kBddOpFuncs; ++j) {
        benchmark::DoNotOptimize(fs[i].compose((i + j) % n, fs[j]).node());
        ++ops;
      }
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_BddOpCompose)->Arg(12)->Arg(18)->Arg(24);

void BM_SubsetThreshold(benchmark::State& state) {
  const unsigned ell = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    Manager mgr(ell);
    benchmark::DoNotOptimize(
        subset_threshold(mgr, ell / 2, ell, 0).dag_size());
  }
}
BENCHMARK(BM_SubsetThreshold)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_LocalClasses(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const TruthTable f = random_table(n, 42);
  VarPartition vp;
  for (unsigned v = 0; v < n; ++v)
    (v < 5 ? vp.bound : vp.free_set).push_back(v);
  for (auto _ : state)
    benchmark::DoNotOptimize(local_partition_tt(f, vp).num_classes);
}
BENCHMARK(BM_LocalClasses)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_GlobalPartition(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  std::vector<TruthTable> fs;
  for (unsigned k = 0; k < m; ++k) fs.push_back(random_table(10, 100 + k));
  VarPartition vp;
  for (unsigned v = 0; v < 10; ++v)
    (v < 5 ? vp.bound : vp.free_set).push_back(v);
  std::vector<VertexPartition> locals;
  for (const auto& f : fs) locals.push_back(local_partition_tt(f, vp));
  for (auto _ : state)
    benchmark::DoNotOptimize(global_partition(locals).num_classes);
}
BENCHMARK(BM_GlobalPartition)->Arg(2)->Arg(4)->Arg(8);

void BM_BuildChi(benchmark::State& state) {
  // A p-class, ℓ-local-class synthetic state (p = 2ℓ: each local class two
  // globals — the regular structure typical of arithmetic circuits).
  const std::uint32_t ell = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t p = 2 * ell;
  OutputState st;
  st.codewidth = codewidth(ell);
  st.blocks.resize(1);
  st.local_of_global.resize(p);
  for (std::uint32_t g = 0; g < p; ++g) {
    st.blocks[0].push_back(g);
    st.local_of_global[g] = g / 2;
  }
  for (auto _ : state) {
    Manager mgr(p);
    benchmark::DoNotOptimize(build_chi(mgr, p, st).dag_size());
  }
}
BENCHMARK(BM_BuildChi)->Arg(4)->Arg(8)->Arg(16)->Arg(24)->Arg(32);

void BM_Lmax(benchmark::State& state) {
  const std::uint32_t p = static_cast<std::uint32_t>(state.range(0));
  Manager mgr(p);
  Rng rng(7);
  std::vector<Bdd> chis;
  for (int k = 0; k < 6; ++k) {
    Bdd f = Bdd::zero(mgr);
    for (int c = 0; c < 4; ++c) {
      std::vector<unsigned> vars;
      std::vector<bool> phases;
      for (std::uint32_t v = 0; v < p; ++v) {
        if (rng.chance(1, 3)) {
          vars.push_back(v);
          phases.push_back(rng.coin());
        }
      }
      f = f | Bdd::cube(mgr, vars, phases);
    }
    chis.push_back(f);
  }
  for (auto _ : state) benchmark::DoNotOptimize(lmax(mgr, p, chis).coverage);
}
BENCHMARK(BM_Lmax)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EngineWorkedExample(benchmark::State& state) {
  // The paper's (f1, f2) vector end to end.
  TruthTable f1(5), f2(5);
  const char* c1[4] = {"00010111", "11111110", "11111110", "00010110"};
  const char* c2[4] = {"00010101", "01111110", "01111110", "11101010"};
  for (unsigned y = 0; y < 4; ++y)
    for (unsigned col = 0; col < 8; ++col) {
      const unsigned x1 = (col >> 2) & 1, x2 = (col >> 1) & 1, x3 = col & 1;
      const std::uint64_t idx = x1 | (x2 << 1) | (x3 << 2) | ((y & 1) << 3) |
                                (static_cast<std::uint64_t>(y >> 1) << 4);
      f1.set(idx, c1[y][col] == '1');
      f2.set(idx, c2[y][col] == '1');
    }
  VarPartition vp;
  vp.bound = {0, 1, 2};
  vp.free_set = {3, 4};
  for (auto _ : state) {
    const auto dec = decompose_multi_output({f1, f2}, vp);
    benchmark::DoNotOptimize(dec->q());
  }
}
BENCHMARK(BM_EngineWorkedExample);

void BM_EngineRandomVector(benchmark::State& state) {
  const unsigned m = static_cast<unsigned>(state.range(0));
  std::vector<TruthTable> fs;
  for (unsigned k = 0; k < m; ++k) fs.push_back(random_table(8, 900 + k));
  VarPartition vp;
  for (unsigned v = 0; v < 8; ++v)
    (v < 5 ? vp.bound : vp.free_set).push_back(v);
  for (auto _ : state) {
    ImodecOptions opts;
    opts.max_p = 64;
    const auto dec = decompose_multi_output(fs, vp, opts);
    benchmark::DoNotOptimize(dec ? dec->q() : 0u);
  }
}
BENCHMARK(BM_EngineRandomVector)->Arg(1)->Arg(2)->Arg(4);

void BM_Sifting(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Manager mgr(n);
    // Pair-separated AND-OR chain: the classic sifting workload.
    Bdd f = Bdd::zero(mgr);
    for (unsigned i = 0; i < n / 2; ++i)
      f = f | (Bdd::var(mgr, i) & Bdd::var(mgr, n / 2 + i));
    state.ResumeTiming();
    benchmark::DoNotOptimize(mgr.sift());
  }
}
BENCHMARK(BM_Sifting)->Arg(8)->Arg(12)->Arg(16);

void BM_MinimizeCover(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const TruthTable f = random_table(n, 77);
  for (auto _ : state)
    benchmark::DoNotOptimize(imodec::minimize_cover(f).size());
}
BENCHMARK(BM_MinimizeCover)->Arg(4)->Arg(6)->Arg(8);

void BM_KernelExtraction(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Network net = *circuits::make_benchmark("count");
    state.ResumeTiming();
    benchmark::DoNotOptimize(opt::extract_kernels(net).divisors_added);
  }
}
BENCHMARK(BM_KernelExtraction);

void BM_FlowPooled(benchmark::State& state) {
  // The full decomposition flow at the width requested with --threads
  // (default 1): the macro-benchmark for the parallel runtime. Results are
  // identical at every width, so times are directly comparable.
  const Network flat = *collapse_network(*circuits::make_benchmark("rd84"));
  std::optional<util::ThreadPool> pool;
  if (g_threads > 1) pool.emplace(g_threads);
  FlowOptions opts;
  opts.pool = pool ? &*pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decompose_to_luts(flat, opts).stats.luts);
  }
}
BENCHMARK(BM_FlowPooled);

/// Console reporter that additionally collects one bench-JSON record per
/// benchmark run ("circuit" carries the benchmark name, e.g. "BM_BddIte/32").
class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCollectingReporter(obs::BenchJson* sink) : sink_(sink) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const double to_sec =
          1.0 / benchmark::GetTimeUnitMultiplier(run.time_unit);
      obs::Json& rec = sink_->add_record(run.benchmark_name(),
                                         run.GetAdjustedRealTime() * to_sec);
      rec["iterations"] = static_cast<long long>(run.iterations);
      rec["cpu_seconds"] = run.GetAdjustedCPUTime() * to_sec;
      rec["threads"] = g_threads;
      // SetItemsProcessed surfaces as an items_per_second rate counter; the
      // BDD-op suite uses it for ops/sec (the perf-smoke regression metric).
      const auto ips = run.counters.find("items_per_second");
      if (ips != run.counters.end())
        rec["ops_per_sec"] = static_cast<double>(ips->second);
    }
  }

 private:
  obs::BenchJson* sink_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = obs::strip_json_flag(argc, argv);
  const auto threads = obs::strip_threads_flag(argc, argv);
  const bool obs_on = obs::strip_obs_flag(argc, argv);
  const auto report_dir = obs::strip_report_dir_flag(argc, argv);
  // --obs measures the instrumented configuration (tools/obs_overhead.py
  // diffs it against the default run); --report-dir wants the registry
  // populated, so it implies the same.
  if (obs_on || report_dir) obs::set_enabled(true);
  g_threads = threads.value_or(1);
  if (g_threads == 0) g_threads = std::thread::hardware_concurrency();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  obs::BenchJson sink("micro");
  if (json_path) {
    JsonCollectingReporter reporter(&sink);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    // Distribution tail: histogram p50/p99 and per-op cache hit rates on one
    // synthetic record, so BENCH files can regress the shape, not just means.
    if (obs::enabled())
      obs::add_obs_summary(sink.add_record("_obs_summary", 0.0));
    if (!sink.write(*json_path)) {
      std::fprintf(stderr, "bench_micro: cannot write %s\n",
                   json_path->c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n", json_path->c_str(),
                sink.num_records());
  } else {
    benchmark::RunSpecifiedBenchmarks();
  }
  if (report_dir && !obs::write_obs_report(*report_dir, "micro")) {
    std::fprintf(stderr, "bench_micro: cannot write obs report under %s\n",
                 report_dir->c_str());
    return 1;
  }
  benchmark::Shutdown();
  return 0;
}
