// Regenerates Table 1: CHARACTERISTICS OF DECOMPOSITIONS.
//
// The paper reports, for function vectors that occurred while decomposing
// f51m, alu4 and term1: the bound-set size b, the local class count ℓ_k per
// output, the global class count p, the number of assignable and preferable
// decomposition functions per output (with the theoretical bounds 2^(2^b)
// and 2^p in parentheses), and the CPU time of the complete implicit
// decomposition of the vector.
//
// We run the actual flow on our circuit equivalents, capture decomposed
// vectors, pick the vector with the most outputs (the interesting ones), and
// print the same columns. Absolute values differ from the paper (different
// substrates and substituted circuits, see DESIGN.md §4); the shape to
// check: #preferable << #assignable << the bounds, and CPU time driven by p.

#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "circuits/registry.hpp"
#include "decomp/varpart.hpp"
#include "imodec/counting.hpp"
#include "imodec/engine.hpp"
#include "map/lutflow.hpp"
#include "map/restructure.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace imodec;

namespace {

obs::BenchJson* g_sink = nullptr;
util::ThreadPool* g_pool = nullptr;  // set by --threads; results identical
unsigned g_threads = 1;

void print_vector_row(const std::string& name, const std::string& circuit,
                      const RecordedVector& rec) {
  // Reproduce the full implicit run for the CPU column (local/global class
  // computation + χ construction + Lmax rounds until completion). The CPU
  // time is the engine's own span-derived stats.seconds — no second
  // stopwatch around the call.
  ImodecStats stats;
  const auto dec = decompose_multi_output(rec.outputs, rec.vp, {}, &stats);
  const double cpu = stats.seconds;

  const auto ch = characterize_vector(rec.outputs, rec.vp);

  std::printf("%-10s b=%u  p=%u  q=%u%s\n", name.c_str(), ch.b, ch.p,
              dec ? dec->q() : 0, dec ? "" : "  (aborted: p too large)");
  std::printf("  bounds: # assign. (%s)   # prefer. (%s)\n",
              ch.assignable_bound.to_string().c_str(),
              ch.preferable_bound.to_string().c_str());
  std::printf("  %-6s %12s %12s\n", "l_k", "# assign.", "# prefer.");
  for (std::size_t k = 0; k < ch.l_k.size(); ++k) {
    std::printf("  %-6u %12s %12s\n", ch.l_k[k],
                ch.assignable[k].to_string().c_str(),
                ch.preferable[k].to_string().c_str());
  }
  std::printf("  CPU/sec %.3f\n\n", cpu);

  if (g_sink) {
    obs::Json& jrec = g_sink->add_record(circuit, cpu);
    jrec["m"] = static_cast<unsigned>(rec.outputs.size());
    jrec["b"] = ch.b;
    jrec["p"] = ch.p;
    if (dec) jrec["q"] = dec->q();
    jrec["threads"] = g_threads;
  }
}

/// Run the flow on `name` (collapsed when possible, else restructured),
/// capture vectors, and report the one with the largest m (ties: largest p).
void characterize_circuit(const std::string& name, unsigned want_m) {
  const auto net = circuits::make_benchmark(name);
  if (!net) {
    std::printf("%s: unknown circuit\n", name.c_str());
    return;
  }
  Network start = net->name().empty() ? *net : *net;
  if (auto collapsed = collapse_network(*net)) {
    start = std::move(*collapsed);
  } else {
    start = restructure(*net);
  }
  FlowOptions opts;
  opts.record_vectors = true;
  opts.max_vector_outputs = want_m;
  opts.pool = g_pool;
  const FlowResult result = decompose_to_luts(start, opts);
  if (result.recorded.empty()) {
    std::printf("%s: no vectors decomposed (already k-feasible)\n\n",
                name.c_str());
    return;
  }
  const RecordedVector* best = &result.recorded.front();
  for (const auto& rec : result.recorded) {
    if (rec.outputs.size() > best->outputs.size() ||
        (rec.outputs.size() == best->outputs.size() &&
         rec.stats.p > best->stats.p))
      best = &rec;
  }
  print_vector_row("f_" + name + " m=" + std::to_string(best->outputs.size()),
                   name, *best);
}

/// The paper's Table 1 uses bound sets beyond the LUT size (b = 8 for alu4,
/// b = 7 for term1). Characterize the widest recorded vector again with the
/// paper's b to reproduce the astronomic #assignable/#preferable columns.
void characterize_paper_b(const std::string& name, unsigned want_m,
                          unsigned paper_b) {
  const auto net = circuits::make_benchmark(name);
  if (!net) return;
  Network start(name);
  if (auto collapsed = collapse_network(*net))
    start = std::move(*collapsed);
  else
    start = restructure(*net);
  FlowOptions opts;
  opts.record_vectors = true;
  opts.max_vector_outputs = want_m;
  opts.pool = g_pool;
  const FlowResult result = decompose_to_luts(start, opts);
  if (result.recorded.empty()) return;
  const RecordedVector* best = &result.recorded.front();
  for (const auto& rec : result.recorded)
    if (rec.outputs.size() > best->outputs.size()) best = &rec;
  const unsigned n = best->outputs.front().num_vars();
  if (paper_b >= n) return;

  VarPartOptions vopts;
  vopts.bound_size = paper_b;
  vopts.require_nontrivial = false;  // characterization only, not mapping
  vopts.pool = g_pool;
  const auto choice = choose_bound_set(best->outputs, n, vopts);
  if (!choice) return;

  Timer timer;
  const auto ch = characterize_vector(best->outputs, choice->vp);
  std::printf("%-10s b=%u  p=%u   (paper-style wide bound set)\n",
              ("f_" + name + " m=" + std::to_string(best->outputs.size()))
                  .c_str(),
              ch.b, ch.p);
  std::printf("  bounds: # assign. (%s)   # prefer. (%s)\n",
              ch.assignable_bound.to_string().c_str(),
              ch.preferable_bound.to_string().c_str());
  std::printf("  %-6s %12s %12s\n", "l_k", "# assign.", "# prefer.");
  for (std::size_t k = 0; k < ch.l_k.size(); ++k)
    std::printf("  %-6u %12s %12s\n", ch.l_k[k],
                ch.assignable[k].to_string().c_str(),
                ch.preferable[k].to_string().c_str());
  std::printf("  CPU/sec %.3f\n\n", timer.seconds());
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = obs::strip_json_flag(argc, argv);
  const auto threads = obs::strip_threads_flag(argc, argv);
  const bool obs_on = obs::strip_obs_flag(argc, argv);
  const auto report_dir = obs::strip_report_dir_flag(argc, argv);
  if (obs_on || report_dir) obs::set_enabled(true);
  obs::BenchJson sink("table1");
  if (json_path) g_sink = &sink;

  g_threads = threads.value_or(1);
  if (g_threads == 0) g_threads = std::thread::hardware_concurrency();
  std::optional<util::ThreadPool> pool;
  if (g_threads > 1) {
    pool.emplace(g_threads);
    g_pool = &*pool;
  }

  std::printf("=== Table 1: characteristics of decompositions ===\n");
  std::printf("(values in parentheses: theoretical bounds 2^(2^b), 2^p)\n\n");
  characterize_circuit("f51m", 3);
  characterize_circuit("alu4", 3);
  characterize_circuit("term1", 6);
  std::printf("--- with the paper's wide bound sets ---\n\n");
  characterize_paper_b("f51m", 3, 5);
  characterize_paper_b("alu4", 3, 8);
  characterize_paper_b("term1", 6, 7);
  // Bonus row: the paper's worked example vector (f1, f2) for calibration —
  // its exact counts are verified by the unit tests.
  std::printf("(see tests/test_counting.cpp for exact-count validation "
              "against brute force)\n");
  if (json_path) {
    if (!sink.write(*json_path)) {
      std::fprintf(stderr, "bench_table1: cannot write %s\n",
                   json_path->c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n", json_path->c_str(),
                sink.num_records());
  }
  if (report_dir && !obs::write_obs_report(*report_dir, "table1")) {
    std::fprintf(stderr, "bench_table1: cannot write obs report under %s\n",
                 report_dir->c_str());
    return 1;
  }
  return 0;
}
