// Serving throughput/latency bench: sustained requests/sec and p50/p99
// latency through one warm serve::Engine over a mixed 12-circuit corpus,
// NPN result cache on vs off (DESIGN.md §14).
//
// Each request travels the full wire path (JSON parse -> per-request config
// -> pipeline -> embedded run report -> JSON serialize), exactly what
// imodec_served does per line, so the numbers are service numbers, not
// engine numbers. The corpus repeats for --rounds rounds; round 1 is the
// cache-warming round and is excluded from the sustained rate (both modes,
// same rule), mirroring a server's steady state on recurring traffic.
// Verification stays at the default `auto` (miter proof within budget), so
// cache-hit results are cross-checked end to end: recompose() inside the
// cache layer plus the run's own miter.
//
// --clients M adds the overload section (DESIGN.md §15): M closed-loop
// clients (one outstanding request each) hammer an in-process serve::Server
// — bounded admission queue over --workers warm engines — and the same
// measurement is repeated with exactly --workers clients as the matched-load
// baseline. A closed loop with 2x-capacity clients offers 2x-capacity load
// by construction; the point of the table is that sustained ok-req/s holds
// at the matched-load level while the excess is shed with typed `overloaded`
// responses, instead of collapsing into queue stalls or timeouts.
//
// Usage: bench_serve [--rounds n] [--threads n] [--clients m] [--workers n]
//                    [--queue n] [--json file]
//
// The --json document follows the bench-JSON schema
// (tools/check_bench_json.py): one record per circuit and mode with the
// mean request latency in "seconds", plus per-mode "corpus" summary records
// carrying sustained req/s and latency percentiles, and one "speedup"
// record with the cache-on/cache-off sustained-rate ratio. With --clients,
// two "concurrent" records (matched / overload) carry ok/shed tallies and
// ok-latency percentiles.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "map/serve.hpp"
#include "obs/bench_json.hpp"

using namespace imodec;

namespace {

const char* kCorpus[] = {"rd53", "rd73", "rd84", "z4ml", "misex1", "9sym",
                         "clip", "sao2", "5xp1", "f51m", "term1", "vg2"};
constexpr std::size_t kCorpusSize = sizeof(kCorpus) / sizeof(kCorpus[0]);

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

struct ModeResult {
  double sustained_rps = 0.0;  // rounds 2..N
  double p50_ms = 0.0, p99_ms = 0.0;
  std::vector<double> per_circuit_mean_s;  // indexed like kCorpus
  NpnCache::Stats cache;
};

ModeResult run_mode(bool cache_on, unsigned rounds, unsigned threads) {
  SynthesisConfig base;
  base.threads = threads;
  base.result_cache = cache_on;
  serve::Engine engine(base);

  std::vector<std::string> requests;
  for (std::size_t c = 0; c < kCorpusSize; ++c)
    requests.push_back(std::string("{\"schema_version\":1,\"id\":\"b") +
                       std::to_string(c) + "\",\"circuit\":{\"name\":\"" +
                       kCorpus[c] + "\"}}");

  ModeResult res;
  res.per_circuit_mean_s.assign(kCorpusSize, 0.0);
  std::vector<double> steady_lat_ms;
  double steady_seconds = 0.0;
  std::uint64_t steady_requests = 0;
  for (unsigned round = 1; round <= rounds; ++round) {
    for (std::size_t c = 0; c < kCorpusSize; ++c) {
      const auto t0 = std::chrono::steady_clock::now();
      const obs::Json resp = engine.handle_line(requests[c]);
      const double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const obs::Json* code = resp.find("code");
      if (!code || code->as_string() != "ok") {
        std::fprintf(stderr, "bench_serve: %s failed: %s\n", kCorpus[c],
                     resp.dump(-1).c_str());
        std::exit(1);
      }
      if (round > 1) {
        steady_seconds += dt;
        ++steady_requests;
        steady_lat_ms.push_back(dt * 1e3);
        res.per_circuit_mean_s[c] += dt;
      }
    }
  }
  if (rounds > 1)
    for (double& s : res.per_circuit_mean_s) s /= (rounds - 1);
  res.sustained_rps = steady_seconds > 0.0
                          ? static_cast<double>(steady_requests) /
                                steady_seconds
                          : 0.0;
  res.p50_ms = percentile(steady_lat_ms, 0.50);
  res.p99_ms = percentile(steady_lat_ms, 0.99);
  if (NpnCache* cache = engine.session().result_cache())
    res.cache = cache->stats();
  return res;
}

struct ConcurrentResult {
  unsigned clients = 0;
  double wall_s = 0.0;
  std::uint64_t ok = 0, overloaded = 0, other = 0;
  double ok_rps = 0.0;     // completed-ok requests per second
  double total_rps = 0.0;  // every typed response per second (incl. sheds)
  double p50_ms = 0.0, p99_ms = 0.0;  // ok-request latency
};

/// Closed-loop concurrent clients against an in-process Server: each client
/// thread keeps exactly one request outstanding via the blocking handle()
/// path (the same path a socket connection thread takes in imodec_served).
/// Each client's first corpus round is warmup and excluded from the stats.
ConcurrentResult run_concurrent(unsigned clients, unsigned workers,
                                std::size_t queue_capacity, unsigned rounds,
                                unsigned threads) {
  SynthesisConfig base;
  base.threads = threads;
  base.result_cache = true;
  serve::ServerOptions so;
  so.workers = workers;
  so.queue_capacity = queue_capacity;
  serve::Server server(base, so);

  std::vector<std::string> requests;
  for (std::size_t c = 0; c < kCorpusSize; ++c)
    requests.push_back(std::string("{\"schema_version\":2,\"id\":\"b") +
                       std::to_string(c) + "\",\"circuit\":{\"name\":\"" +
                       kCorpus[c] + "\"}}");

  ConcurrentResult res;
  res.clients = clients;
  std::atomic<std::uint64_t> ok{0}, overloaded{0}, other{0};
  std::mutex lat_mu;
  std::vector<double> lat_ms;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads_v;
  threads_v.reserve(clients);
  for (unsigned cl = 0; cl < clients; ++cl) {
    threads_v.emplace_back([&, cl] {
      for (unsigned round = 1; round <= rounds; ++round) {
        for (std::size_t c = 0; c < kCorpusSize; ++c) {
          // Stagger the corpus per client so the NPN caches see a mixed
          // stream rather than kCorpusSize simultaneous copies of one run.
          const std::size_t idx = (c + cl) % kCorpusSize;
          const auto r0 = std::chrono::steady_clock::now();
          const std::string resp = server.handle(requests[idx]);
          const double dt_ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - r0)
                  .count();
          const std::optional<obs::Json> doc = obs::Json::parse(resp);
          const obs::Json* code = doc ? doc->find("code") : nullptr;
          const std::string code_s = code ? code->as_string() : "?";
          if (round == 1) continue;  // warmup round
          if (code_s == "ok") {
            ok.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(lat_mu);
            lat_ms.push_back(dt_ms);
          } else if (code_s == "overloaded") {
            overloaded.fetch_add(1, std::memory_order_relaxed);
          } else {
            other.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : threads_v) t.join();
  res.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  server.drain();

  res.ok = ok.load();
  res.overloaded = overloaded.load();
  res.other = other.load();
  if (res.wall_s > 0.0) {
    res.ok_rps = static_cast<double>(res.ok) / res.wall_s;
    res.total_rps =
        static_cast<double>(res.ok + res.overloaded + res.other) / res.wall_s;
  }
  res.p50_ms = percentile(lat_ms, 0.50);
  res.p99_ms = percentile(lat_ms, 0.99);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned rounds = 8;
  unsigned threads = 1;
  unsigned clients = 0;
  unsigned workers = 2;
  std::size_t queue_capacity = 4;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rounds" && i + 1 < argc)
      rounds = static_cast<unsigned>(std::stoul(argv[++i]));
    else if (arg == "--threads" && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    else if (arg == "--clients" && i + 1 < argc)
      clients = static_cast<unsigned>(std::stoul(argv[++i]));
    else if (arg == "--workers" && i + 1 < argc)
      workers = static_cast<unsigned>(std::stoul(argv[++i]));
    else if (arg == "--queue" && i + 1 < argc)
      queue_capacity = static_cast<std::size_t>(std::stoull(argv[++i]));
    else if (arg == "--json" && i + 1 < argc)
      json_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--rounds n] [--threads n] [--clients m] "
                   "[--workers n] [--queue n] [--json file]\n",
                   argv[0]);
      return 2;
    }
  }
  if (workers == 0) workers = 1;
  if (rounds < 2) rounds = 2;  // need at least one steady-state round

  std::printf("serving bench: %zu circuits x %u rounds (round 1 = warmup)\n",
              kCorpusSize, rounds);
  const ModeResult off = run_mode(false, rounds, threads);
  const ModeResult on = run_mode(true, rounds, threads);
  const double speedup =
      off.sustained_rps > 0.0 ? on.sustained_rps / off.sustained_rps : 0.0;

  std::printf("%-10s %12s %10s %10s\n", "mode", "req/s", "p50 ms", "p99 ms");
  std::printf("%-10s %12.1f %10.3f %10.3f\n", "cache-off", off.sustained_rps,
              off.p50_ms, off.p99_ms);
  std::printf("%-10s %12.1f %10.3f %10.3f\n", "cache-on", on.sustained_rps,
              on.p50_ms, on.p99_ms);
  std::printf("cache-on speedup: %.2fx sustained req/s "
              "(cache: %llu hits / %llu misses / %llu evictions)\n",
              speedup, static_cast<unsigned long long>(on.cache.hits),
              static_cast<unsigned long long>(on.cache.misses),
              static_cast<unsigned long long>(on.cache.evictions));

  ConcurrentResult matched, overload;
  if (clients > 0) {
    std::printf("\nconcurrent serving: %u workers, queue %zu "
                "(closed-loop clients, round 1 = warmup)\n",
                workers, queue_capacity);
    matched = run_concurrent(workers, workers, queue_capacity, rounds,
                             threads);
    overload = run_concurrent(clients, workers, queue_capacity, rounds,
                              threads);
    std::printf("%-10s %8s %12s %12s %10s %10s %10s\n", "load", "clients",
                "ok req/s", "resp req/s", "shed", "p50 ms", "p99 ms");
    const auto print_row = [](const char* label, const ConcurrentResult& r) {
      std::printf("%-10s %8u %12.1f %12.1f %10llu %10.3f %10.3f\n", label,
                  r.clients, r.ok_rps, r.total_rps,
                  static_cast<unsigned long long>(r.overloaded), r.p50_ms,
                  r.p99_ms);
    };
    print_row("matched", matched);
    print_row("overload", overload);
    const double hold = matched.ok_rps > 0.0
                            ? overload.ok_rps / matched.ok_rps
                            : 0.0;
    std::printf("sustained ok-req/s at %.1fx-capacity offered load: %.2fx "
                "of matched (%llu requests shed with typed `overloaded`)\n",
                workers ? static_cast<double>(clients) / workers : 0.0, hold,
                static_cast<unsigned long long>(overload.overloaded));
    if (overload.other > 0)
      std::printf("note: %llu non-ok non-overloaded responses\n",
                  static_cast<unsigned long long>(overload.other));
  }

  if (!json_path.empty()) {
    obs::BenchJson sink("serve");
    for (std::size_t c = 0; c < kCorpusSize; ++c) {
      obs::Json& r_off =
          sink.add_record(kCorpus[c], off.per_circuit_mean_s[c]);
      r_off["mode"] = "cache_off";
      obs::Json& r_on = sink.add_record(kCorpus[c], on.per_circuit_mean_s[c]);
      r_on["mode"] = "cache_on";
    }
    const auto summary = [&](const char* mode, const ModeResult& m) {
      obs::Json& r = sink.add_record(
          "corpus", m.sustained_rps > 0.0 ? 1.0 / m.sustained_rps : 0.0);
      r["mode"] = mode;
      r["sustained_req_per_s"] = m.sustained_rps;
      r["p50_ms"] = m.p50_ms;
      r["p99_ms"] = m.p99_ms;
      r["rounds"] = rounds;
      r["corpus_size"] = static_cast<unsigned>(kCorpusSize);
    };
    summary("cache_off", off);
    summary("cache_on", on);
    obs::Json& sp = sink.add_record("speedup", 0.0);
    sp["mode"] = "summary";
    sp["cache_speedup"] = speedup;
    sp["cache_hits"] = on.cache.hits;
    sp["cache_misses"] = on.cache.misses;
    sp["cache_evictions"] = on.cache.evictions;
    if (clients > 0) {
      const auto concurrent = [&](const char* mode,
                                  const ConcurrentResult& r) {
        obs::Json& rec = sink.add_record(
            "concurrent", r.ok_rps > 0.0 ? 1.0 / r.ok_rps : 0.0);
        rec["mode"] = mode;
        rec["clients"] = r.clients;
        rec["workers"] = workers;
        rec["queue"] = static_cast<std::uint64_t>(queue_capacity);
        rec["ok_req_per_s"] = r.ok_rps;
        rec["resp_req_per_s"] = r.total_rps;
        rec["ok"] = r.ok;
        rec["overloaded"] = r.overloaded;
        rec["other"] = r.other;
        rec["p50_ms"] = r.p50_ms;
        rec["p99_ms"] = r.p99_ms;
      };
      concurrent("matched", matched);
      concurrent("overload", overload);
    }
    if (!sink.write(json_path)) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
