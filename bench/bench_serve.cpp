// Serving throughput/latency bench: sustained requests/sec and p50/p99
// latency through one warm serve::Engine over a mixed 12-circuit corpus,
// NPN result cache on vs off (DESIGN.md §14).
//
// Each request travels the full wire path (JSON parse -> per-request config
// -> pipeline -> embedded run report -> JSON serialize), exactly what
// imodec_served does per line, so the numbers are service numbers, not
// engine numbers. The corpus repeats for --rounds rounds; round 1 is the
// cache-warming round and is excluded from the sustained rate (both modes,
// same rule), mirroring a server's steady state on recurring traffic.
// Verification stays at the default `auto` (miter proof within budget), so
// cache-hit results are cross-checked end to end: recompose() inside the
// cache layer plus the run's own miter.
//
// Usage: bench_serve [--rounds n] [--threads n] [--json file]
//
// The --json document follows the bench-JSON schema
// (tools/check_bench_json.py): one record per circuit and mode with the
// mean request latency in "seconds", plus per-mode "corpus" summary records
// carrying sustained req/s and latency percentiles, and one "speedup"
// record with the cache-on/cache-off sustained-rate ratio.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "map/serve.hpp"
#include "obs/bench_json.hpp"

using namespace imodec;

namespace {

const char* kCorpus[] = {"rd53", "rd73", "rd84", "z4ml", "misex1", "9sym",
                         "clip", "sao2", "5xp1", "f51m", "term1", "vg2"};
constexpr std::size_t kCorpusSize = sizeof(kCorpus) / sizeof(kCorpus[0]);

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

struct ModeResult {
  double sustained_rps = 0.0;  // rounds 2..N
  double p50_ms = 0.0, p99_ms = 0.0;
  std::vector<double> per_circuit_mean_s;  // indexed like kCorpus
  NpnCache::Stats cache;
};

ModeResult run_mode(bool cache_on, unsigned rounds, unsigned threads) {
  SynthesisConfig base;
  base.threads = threads;
  base.result_cache = cache_on;
  serve::Engine engine(base);

  std::vector<std::string> requests;
  for (std::size_t c = 0; c < kCorpusSize; ++c)
    requests.push_back(std::string("{\"schema_version\":1,\"id\":\"b") +
                       std::to_string(c) + "\",\"circuit\":{\"name\":\"" +
                       kCorpus[c] + "\"}}");

  ModeResult res;
  res.per_circuit_mean_s.assign(kCorpusSize, 0.0);
  std::vector<double> steady_lat_ms;
  double steady_seconds = 0.0;
  std::uint64_t steady_requests = 0;
  for (unsigned round = 1; round <= rounds; ++round) {
    for (std::size_t c = 0; c < kCorpusSize; ++c) {
      const auto t0 = std::chrono::steady_clock::now();
      const obs::Json resp = engine.handle_line(requests[c]);
      const double dt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const obs::Json* code = resp.find("code");
      if (!code || code->as_string() != "ok") {
        std::fprintf(stderr, "bench_serve: %s failed: %s\n", kCorpus[c],
                     resp.dump(-1).c_str());
        std::exit(1);
      }
      if (round > 1) {
        steady_seconds += dt;
        ++steady_requests;
        steady_lat_ms.push_back(dt * 1e3);
        res.per_circuit_mean_s[c] += dt;
      }
    }
  }
  if (rounds > 1)
    for (double& s : res.per_circuit_mean_s) s /= (rounds - 1);
  res.sustained_rps = steady_seconds > 0.0
                          ? static_cast<double>(steady_requests) /
                                steady_seconds
                          : 0.0;
  res.p50_ms = percentile(steady_lat_ms, 0.50);
  res.p99_ms = percentile(steady_lat_ms, 0.99);
  if (NpnCache* cache = engine.session().result_cache())
    res.cache = cache->stats();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned rounds = 8;
  unsigned threads = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rounds" && i + 1 < argc)
      rounds = static_cast<unsigned>(std::stoul(argv[++i]));
    else if (arg == "--threads" && i + 1 < argc)
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    else if (arg == "--json" && i + 1 < argc)
      json_path = argv[++i];
    else {
      std::fprintf(stderr,
                   "usage: %s [--rounds n] [--threads n] [--json file]\n",
                   argv[0]);
      return 2;
    }
  }
  if (rounds < 2) rounds = 2;  // need at least one steady-state round

  std::printf("serving bench: %zu circuits x %u rounds (round 1 = warmup)\n",
              kCorpusSize, rounds);
  const ModeResult off = run_mode(false, rounds, threads);
  const ModeResult on = run_mode(true, rounds, threads);
  const double speedup =
      off.sustained_rps > 0.0 ? on.sustained_rps / off.sustained_rps : 0.0;

  std::printf("%-10s %12s %10s %10s\n", "mode", "req/s", "p50 ms", "p99 ms");
  std::printf("%-10s %12.1f %10.3f %10.3f\n", "cache-off", off.sustained_rps,
              off.p50_ms, off.p99_ms);
  std::printf("%-10s %12.1f %10.3f %10.3f\n", "cache-on", on.sustained_rps,
              on.p50_ms, on.p99_ms);
  std::printf("cache-on speedup: %.2fx sustained req/s "
              "(cache: %llu hits / %llu misses / %llu evictions)\n",
              speedup, static_cast<unsigned long long>(on.cache.hits),
              static_cast<unsigned long long>(on.cache.misses),
              static_cast<unsigned long long>(on.cache.evictions));

  if (!json_path.empty()) {
    obs::BenchJson sink("serve");
    for (std::size_t c = 0; c < kCorpusSize; ++c) {
      obs::Json& r_off =
          sink.add_record(kCorpus[c], off.per_circuit_mean_s[c]);
      r_off["mode"] = "cache_off";
      obs::Json& r_on = sink.add_record(kCorpus[c], on.per_circuit_mean_s[c]);
      r_on["mode"] = "cache_on";
    }
    const auto summary = [&](const char* mode, const ModeResult& m) {
      obs::Json& r = sink.add_record(
          "corpus", m.sustained_rps > 0.0 ? 1.0 / m.sustained_rps : 0.0);
      r["mode"] = mode;
      r["sustained_req_per_s"] = m.sustained_rps;
      r["p50_ms"] = m.p50_ms;
      r["p99_ms"] = m.p99_ms;
      r["rounds"] = rounds;
      r["corpus_size"] = static_cast<unsigned>(kCorpusSize);
    };
    summary("cache_off", off);
    summary("cache_on", on);
    obs::Json& sp = sink.add_record("speedup", 0.0);
    sp["mode"] = "summary";
    sp["cache_speedup"] = speedup;
    sp["cache_hits"] = on.cache.hits;
    sp["cache_misses"] = on.cache.misses;
    sp["cache_evictions"] = on.cache.evictions;
    if (!sink.write(json_path)) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
