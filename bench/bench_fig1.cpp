// Regenerates Figure 1: single-output vs. multiple-output decomposition of
// circuit rd53 with k = 4.
//
// The paper's figure shows the rd53 netlist after (a) per-output functional
// decomposition — 11 LUTs, no shared subfunctions — and (b) multiple-output
// decomposition with IMODEC — 6 LUTs, the three bound-set functions shared
// by all outputs. We run both flows, print the LUT netlists and counts, and
// the resulting XC3000 CLB counts.

#include <cstdio>
#include <optional>
#include <thread>

#include "circuits/registry.hpp"
#include "logic/cube.hpp"
#include "logic/simulate.hpp"
#include "map/lutflow.hpp"
#include "map/xc3000.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

using namespace imodec;

namespace {

util::ThreadPool* g_pool = nullptr;  // set by --threads; results identical
unsigned g_threads = 1;

void print_netlist(const Network& net) {
  const auto order = net.topo_order();
  for (SigId s : order) {
    const auto& n = net.node(s);
    if (n.kind != Network::Kind::Logic || n.fanins.empty()) continue;
    std::printf("  n%-3u <- {", s);
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      const auto& f = net.node(n.fanins[i]);
      if (!f.name.empty())
        std::printf("%s%s", i ? "," : "", f.name.c_str());
      else
        std::printf("%sn%u", i ? "," : "", n.fanins[i]);
    }
    std::printf("}  (%zu-LUT)\n", n.fanins.size());
  }
  for (std::size_t k = 0; k < net.num_outputs(); ++k)
    std::printf("  output %s = n%u\n", net.output_names()[k].c_str(),
                net.outputs()[k]);
}

unsigned run(const Network& flat, const Network& reference, bool multi,
             const char* label, obs::BenchJson* sink) {
  FlowOptions opts;
  opts.k = 4;  // the figure uses 4-input LUTs
  opts.multi_output = multi;
  opts.pool = g_pool;
  const FlowResult r = decompose_to_luts(flat, opts);
  const auto eq = check_equivalence(reference, r.network);
  const auto clbs = pack_xc3000(r.network);
  std::printf("--- %s ---\n", label);
  print_netlist(r.network);
  std::printf("LUTs: %u   CLBs: %u   equivalence: %s\n\n", r.stats.luts,
              clbs.clbs, eq.equivalent ? "PASS" : "FAIL");
  if (sink) {
    obs::Json& rec = sink->add_record("rd53", r.stats.seconds);
    rec["mode"] = multi ? "multi" : "single";
    rec["luts"] = r.stats.luts;
    rec["clbs"] = clbs.clbs;
    rec["depth"] = r.network.depth();
    rec["p"] = r.stats.max_p;
    rec["m"] = r.stats.max_m;
    rec["lmax_rounds"] = r.stats.lmax_rounds;
    rec["bdd_nodes"] = r.stats.bdd_nodes;
    rec["cache_hit_rate"] = r.stats.cache_hit_rate();
    rec["verified"] = eq.equivalent;
    rec["threads"] = g_threads;
  }
  return r.stats.luts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = obs::strip_json_flag(argc, argv);
  const auto threads = obs::strip_threads_flag(argc, argv);
  const bool obs_on = obs::strip_obs_flag(argc, argv);
  const auto report_dir = obs::strip_report_dir_flag(argc, argv);
  if (obs_on || report_dir) obs::set_enabled(true);
  obs::BenchJson sink("fig1");

  g_threads = threads.value_or(1);
  if (g_threads == 0) g_threads = std::thread::hardware_concurrency();
  std::optional<util::ThreadPool> pool;
  if (g_threads > 1) {
    pool.emplace(g_threads);
    g_pool = &*pool;
  }

  std::printf("=== Figure 1: decomposition of rd53, k = 4 ===\n\n");
  const Network rd53 = *circuits::make_benchmark("rd53");
  const Network flat = *collapse_network(rd53);

  const unsigned single = run(flat, rd53, false,
                              "a) single-output decomposition",
                              json_path ? &sink : nullptr);
  const unsigned multi = run(flat, rd53, true,
                             "b) multiple-output decomposition (IMODEC)",
                             json_path ? &sink : nullptr);

  std::printf("summary: single-output %u LUTs vs multiple-output %u LUTs\n",
              single, multi);
  std::printf("paper:   single-output 11 LUTs vs multiple-output 6 LUTs\n");
  std::printf("shape reproduced: %s\n", multi < single ? "YES" : "NO");
  if (json_path) {
    if (!sink.write(*json_path)) {
      std::fprintf(stderr, "bench_fig1: cannot write %s\n", json_path->c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n", json_path->c_str(),
                sink.num_records());
  }
  if (report_dir && !obs::write_obs_report(*report_dir, "fig1")) {
    std::fprintf(stderr, "bench_fig1: cannot write obs report under %s\n",
                 report_dir->c_str());
    return 1;
  }
  return multi < single ? 0 : 1;
}
