// Regenerates Table 2: MAPPING TO XILINX XC3000 CLBs.
//
// For every circuit of the paper's Table 2 we run four configurations:
//   IMODEC   — collapse, multiple-output decomposition, CLB packing
//   Single   — collapse, single-output decomposition, CLB packing
//   r+IMODEC — restructure (script.rugged stand-in), multi-output, packing
//   r+FGMap  — restructure, single-output BDD-style baseline, packing
// and print measured CLB counts next to the paper's reference values.
// Circuits whose cones exceed the truth-table limit cannot be collapsed —
// exactly the rows the paper marks with '*' — and only run the r+ modes.
//
// Absolute CLB counts are not comparable (synthetic substitutes, different
// pre-structuring; DESIGN.md §4); the shape to check is the column ordering:
// IMODEC <= Single on (almost) every row, with a double-digit average gain.

#include <cstdio>
#include <optional>
#include <string>
#include <thread>

#include "circuits/registry.hpp"
#include "logic/simulate.hpp"
#include "map/lutflow.hpp"
#include "map/restructure.hpp"
#include "map/xc3000.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace imodec;

namespace {

util::ThreadPool* g_pool = nullptr;  // set by --threads; results identical
unsigned g_threads = 1;

struct Row {
  std::string name;
  int m = -1, p = -1;
  int imodec = -1, single_ = -1, r_imodec = -1, r_fgmap = -1;
  unsigned depth = 0, lmax_rounds = 0;
  std::uint64_t bdd_nodes = 0, bdd_cache_lookups = 0, bdd_cache_hits = 0;
  double cpu = 0.0;
  bool verified = true;
  bool degraded = false;  // any governed fallback fired (DESIGN.md §12)
};

int run_mode(const Network& reference, const Network& start, bool multi,
             int* max_m, int* max_p, bool* verified, Row* row) {
  FlowOptions opts;
  opts.multi_output = multi;
  opts.pool = g_pool;
  const FlowResult r = decompose_to_luts(start, opts);
  if (max_m) *max_m = static_cast<int>(r.stats.max_m);
  if (max_p) *max_p = static_cast<int>(r.stats.max_p);
  if (row) {
    row->lmax_rounds += r.stats.lmax_rounds;
    row->bdd_nodes += r.stats.bdd_nodes;
    row->bdd_cache_lookups += r.stats.bdd_cache_lookups;
    row->bdd_cache_hits += r.stats.bdd_cache_hits;
    if (multi && row->depth == 0) row->depth = r.network.depth();
    row->degraded = row->degraded || r.degrade.degraded();
  }
  EquivalenceOptions eq_opts;
  eq_opts.random_vectors = 512;  // light check; tests do the heavy lifting
  if (verified && !check_equivalence(reference, r.network, eq_opts).equivalent)
    *verified = false;
  return static_cast<int>(pack_xc3000(r.network).clbs);
}

std::string cell(int v) { return v < 0 ? "-" : std::to_string(v); }

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = obs::strip_json_flag(argc, argv);
  const auto threads = obs::strip_threads_flag(argc, argv);
  const bool obs_on = obs::strip_obs_flag(argc, argv);
  const auto report_dir = obs::strip_report_dir_flag(argc, argv);
  if (obs_on || report_dir) obs::set_enabled(true);
  obs::BenchJson sink("table2");
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  g_threads = threads.value_or(1);
  if (g_threads == 0) g_threads = std::thread::hardware_concurrency();
  std::optional<util::ThreadPool> pool;
  if (g_threads > 1) {
    pool.emplace(g_threads);
    g_pool = &*pool;
  }
  std::printf("=== Table 2: mapping to Xilinx XC3000 CLBs ===\n\n");
  std::printf("%-8s | %-7s %5s %7s %9s %8s | %5s %7s %9s %8s | %7s %5s\n",
              "net", "m/p", "CLB", "Single", "r+IMODEC", "r+FGMap", "CLB",
              "Single", "r+IMODEC", "r+FGMap", "CPU/s", "ok");
  std::printf("%-8s | %-31s | %-32s |\n", "", "------- paper -------",
              "------ measured ------");

  long paper_multi = 0, paper_single = 0;
  long meas_multi = 0, meas_single = 0;
  long meas_rm = 0, meas_rf = 0;
  long meas_rm_norot = 0, meas_rf_norot = 0;

  for (const auto& info : circuits::table2_benchmarks()) {
    if (quick && (info.name == "des" || info.name == "C5315" ||
                  info.name == "apex6" || info.name == "rot"))
      continue;
    const auto net = circuits::make_benchmark(info.name);
    if (!net) continue;
    Row row;
    row.name = info.name;
    Timer timer;

    const auto collapsed = collapse_network(*net);
    if (collapsed) {
      int m = -1, p = -1;
      row.imodec =
          run_mode(*net, *collapsed, true, &m, &p, &row.verified, &row);
      row.m = m;
      row.p = p;
      row.single_ = run_mode(*net, *collapsed, false, nullptr, nullptr,
                             &row.verified, &row);
    }
    // The r+ rows use a more aggressive pre-structuring (closer to what
    // script.rugged leaves behind): bounded duplication gives the
    // decomposition engine wider nodes to share across.
    RestructureOptions ropts;
    ropts.max_support = 12;
    ropts.max_fanout = 2;
    const Network pre = restructure(*net, ropts);
    row.r_imodec =
        run_mode(*net, pre, true, nullptr, nullptr, &row.verified, &row);
    row.r_fgmap =
        run_mode(*net, pre, false, nullptr, nullptr, &row.verified, &row);
    row.cpu = timer.seconds();

    if (json_path) {
      obs::Json& rec = sink.add_record(row.name, row.cpu);
      if (row.m >= 0) rec["m"] = row.m;
      if (row.p >= 0) rec["p"] = row.p;
      if (row.imodec >= 0) rec["clbs"] = row.imodec;
      if (row.single_ >= 0) rec["clbs_single"] = row.single_;
      rec["clbs_r_imodec"] = row.r_imodec;
      rec["clbs_r_fgmap"] = row.r_fgmap;
      if (row.depth > 0) rec["depth"] = row.depth;
      rec["lmax_rounds"] = row.lmax_rounds;
      rec["bdd_nodes"] = row.bdd_nodes;
      rec["cache_hit_rate"] =
          row.bdd_cache_lookups
              ? static_cast<double>(row.bdd_cache_hits) /
                    static_cast<double>(row.bdd_cache_lookups)
              : 0.0;
      rec["verified"] = row.verified;
      rec["verify_mode"] = "sim";  // 512-vector spot check, not the miter
      rec["degraded"] = row.degraded;
      rec["threads"] = g_threads;
    }

    const std::string mp = collapsed ? (std::to_string(row.m) + "/" +
                                        std::to_string(row.p))
                                     : std::string("-");
    std::printf("%-8s | %-7s %5s %7s %9s %8s | %5s %7s %9s %8s | %7.1f %5s\n",
                row.name.c_str(), mp.c_str(),
                cell(info.paper_imodec_clb).c_str(),
                cell(info.paper_single_clb).c_str(),
                cell(info.paper_r_imodec_clb).c_str(),
                cell(info.paper_r_fgmap_clb).c_str(),
                cell(row.imodec).c_str(), cell(row.single_).c_str(),
                cell(row.r_imodec).c_str(), cell(row.r_fgmap).c_str(),
                row.cpu, row.verified ? "yes" : "NO");

    if (row.imodec >= 0 && row.single_ >= 0) {
      meas_multi += row.imodec;
      meas_single += row.single_;
      if (info.paper_imodec_clb > 0 && info.paper_single_clb > 0) {
        paper_multi += info.paper_imodec_clb;
        paper_single += info.paper_single_clb;
      }
    }
    meas_rm += row.r_imodec;
    meas_rf += row.r_fgmap;
    if (info.name != "rot") {
      meas_rm_norot += row.r_imodec;
      meas_rf_norot += row.r_fgmap;
    }
  }

  std::printf("\nSums over collapsible rows:\n");
  std::printf("  paper   : IMODEC %ld vs Single %ld  (%.0f%% reduction)\n",
              paper_multi, paper_single,
              100.0 * (paper_single - paper_multi) / paper_single);
  if (meas_single > 0) {
    std::printf("  measured: IMODEC %ld vs Single %ld  (%.0f%% reduction)\n",
                meas_multi, meas_single,
                100.0 * (meas_single - meas_multi) / meas_single);
  }
  std::printf("Restructured rows: r+IMODEC %ld vs r+FGMap-style %ld "
              "(%.0f%% reduction)\n",
              meas_rm, meas_rf, 100.0 * (meas_rf - meas_rm) / meas_rf);
  std::printf("  excluding rot  : r+IMODEC %ld vs r+FGMap-style %ld "
              "(%.0f%% reduction)\n",
              meas_rm_norot, meas_rf_norot,
              100.0 * (meas_rf_norot - meas_rm_norot) / meas_rf_norot);
  std::printf("  (rot is mux-dominated: grouped bound sets widen the g\n"
              "   functions there; see EXPERIMENTS.md for the discussion)\n");
  std::printf("\n(paper: 38%% avg reduction vs Single, 16%% vs FGMap)\n");
  if (json_path) {
    if (obs::enabled())
      obs::add_obs_summary(sink.add_record("_obs_summary", 0.0));
    if (!sink.write(*json_path)) {
      std::fprintf(stderr, "bench_table2: cannot write %s\n",
                   json_path->c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n", json_path->c_str(),
                sink.num_records());
  }
  if (report_dir && !obs::write_obs_report(*report_dir, "table2")) {
    std::fprintf(stderr, "bench_table2: cannot write obs report under %s\n",
                 report_dir->c_str());
    return 1;
  }
  return 0;
}
