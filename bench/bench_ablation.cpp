// Ablation studies for the design choices the paper calls out:
//
//  A. Non-strict vs strict decomposition (paper §1/§3: strict decompositions
//     "cannot detect all common decomposition functions").
//  B. Output partitioning heuristic on/off (paper §7).
//  C. Preferable-function restriction: size of the implicit search space per
//     output vs. the assignable-function space (the point of Theorem 1).
//  D. Bound-set size sweep (variable partitioning strongly affects p and q).

#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "imodec/chi.hpp"
#include "imodec/counting.hpp"
#include "imodec/engine.hpp"
#include "map/driver.hpp"
#include "map/lutflow.hpp"
#include "map/xc3000.hpp"
#include "map/xc4000.hpp"
#include "obs/bench_json.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

using namespace imodec;

namespace {

const std::vector<std::string> kCircuits{"rd73", "rd84", "f51m", "z4ml",
                                         "5xp1", "clip", "misex1", "sao2"};

obs::BenchJson* g_sink = nullptr;
util::ThreadPool* g_pool = nullptr;  // set by --threads; results identical
unsigned g_threads = 1;

/// All ablations share the pooled flow entry point so `--threads` speeds up
/// every section the same way.
FlowResult run_flow(const Network& net, FlowOptions opts) {
  opts.pool = g_pool;
  return decompose_to_luts(net, opts);
}

void ablation_strict() {
  std::printf("--- A. non-strict vs strict codes (CLBs, collapsed flow) ---\n");
  std::printf("%-8s %10s %8s\n", "net", "non-strict", "strict");
  long ns = 0, st = 0;
  for (const auto& name : kCircuits) {
    const auto flat = collapse_network(*circuits::make_benchmark(name));
    if (!flat) continue;
    FlowOptions a;
    FlowOptions b;
    b.imodec.strict = true;
    const FlowResult ra = run_flow(*flat, a);
    const FlowResult rb = run_flow(*flat, b);
    const unsigned ca = pack_xc3000(ra.network).clbs;
    const unsigned cb = pack_xc3000(rb.network).clbs;
    std::printf("%-8s %10u %8u\n", name.c_str(), ca, cb);
    ns += ca;
    st += cb;
    if (g_sink) {
      obs::Json& rec = g_sink->add_record(name, ra.stats.seconds);
      rec["ablation"] = "strict";
      rec["clbs"] = ca;
      rec["clbs_strict"] = cb;
      rec["luts"] = ra.stats.luts;
      rec["lmax_rounds"] = ra.stats.lmax_rounds;
      rec["bdd_nodes"] = ra.stats.bdd_nodes;
      rec["cache_hit_rate"] = ra.stats.cache_hit_rate();
      rec["threads"] = g_threads;
    }
  }
  std::printf("%-8s %10ld %8ld  (non-strict should win or tie)\n\n", "sum", ns,
              st);
}

void ablation_output_partitioning() {
  std::printf("--- B. output partitioning heuristic (LUTs) ---\n");
  std::printf("%-8s %8s %8s\n", "net", "grouped", "solo");
  long g = 0, s = 0;
  for (const auto& name : kCircuits) {
    const auto flat = collapse_network(*circuits::make_benchmark(name));
    if (!flat) continue;
    FlowOptions a;
    FlowOptions b;
    b.output_partitioning = false;
    const unsigned la = run_flow(*flat, a).stats.luts;
    const unsigned lb = run_flow(*flat, b).stats.luts;
    std::printf("%-8s %8u %8u\n", name.c_str(), la, lb);
    g += la;
    s += lb;
  }
  std::printf("%-8s %8ld %8ld\n\n", "sum", g, s);
}

void ablation_preferable() {
  std::printf("--- C. search-space reduction by preferability ---\n");
  std::printf("(per-output counts on the widest recorded vector)\n");
  std::printf("%-8s %4s %4s %14s %14s %10s\n", "net", "b", "p", "# assign.",
              "# prefer.", "reduction");
  for (const auto& name : {"f51m", "rd84", "5xp1", "clip"}) {
    const auto flat = collapse_network(*circuits::make_benchmark(name));
    if (!flat) continue;
    FlowOptions opts;
    opts.record_vectors = true;
    const FlowResult r = run_flow(*flat, opts);
    if (r.recorded.empty()) continue;
    const RecordedVector* best = &r.recorded.front();
    for (const auto& rec : r.recorded)
      if (rec.outputs.size() > best->outputs.size()) best = &rec;
    const auto ch = characterize_vector(best->outputs, best->vp);
    for (std::size_t k = 0; k < ch.l_k.size(); ++k) {
      const double logdrop =
          ch.assignable[k].log10() - ch.preferable[k].log10();
      std::printf("%-8s %4u %4u %14s %14s %9.1fx\n", name, ch.b, ch.p,
                  ch.assignable[k].to_string().c_str(),
                  ch.preferable[k].to_string().c_str(),
                  std::pow(10.0, logdrop));
    }
  }
  std::printf("\n");
}

void ablation_bound_size() {
  std::printf("--- D. bound-set size sweep (LUTs, multi-output flow) ---\n");
  std::printf("%-8s", "net");
  for (unsigned b = 3; b <= 5; ++b) std::printf("    b=%u", b);
  std::printf("\n");
  for (const auto& name : {"rd84", "f51m", "clip"}) {
    std::printf("%-8s", name);
    for (unsigned b = 3; b <= 5; ++b) {
      const auto flat = collapse_network(*circuits::make_benchmark(name));
      FlowOptions opts;
      opts.varpart.bound_size = b;
      const FlowResult r = run_flow(*flat, opts);
      std::printf(" %6u", r.stats.luts);
    }
    std::printf("\n");
  }
  std::printf("(bound size is capped at k; the flow clamps b to the node "
              "support minus one)\n");
}

void ablation_sifting() {
  std::printf("\n--- E. BDD variable sifting on χ (extension, DESIGN.md §7) "
              "---\n");
  std::printf("χ for a regular p-class state, dag size before/after sift:\n");
  std::printf("%6s %6s %10s %10s\n", "l", "p", "before", "after");
  // ℓ = 10 (p = 20) already explodes in the interleaved layout — the very
  // point of the experiment; the guard below reports and skips such cases.
  for (std::uint32_t ell : {4u, 6u, 8u}) {
    const std::uint32_t p = 2 * ell;
    OutputState st;
    st.codewidth = codewidth(ell);
    st.blocks.resize(1);
    st.local_of_global.resize(p);
    for (std::uint32_t g = 0; g < p; ++g) {
      st.blocks[0].push_back(g);
      // Interleaved local classes: class i owns globals i and i + ell, a
      // deliberately ordering-hostile layout.
      st.local_of_global[g] = g % ell;
    }
    bdd::Manager mgr(p);
    const bdd::Bdd chi = build_chi(mgr, p, st);
    const std::size_t before = chi.dag_size();
    if (before > 100000) {
      std::printf("%6u %6u %10zu %10s\n", ell, p, before, "(skipped)");
      continue;
    }
    mgr.sift();
    std::printf("%6u %6u %10zu %10zu\n", ell, p, before, chi.dag_size());
  }
}

void ablation_xc4000() {
  std::printf("\n--- F. XC4000 target (k=4 flow, H-pattern packing; "
              "extension) ---\n");
  std::printf("%-8s %10s %10s %10s\n", "net", "4-LUTs", "XC4000", "Hpatterns");
  for (const std::string name : {"rd73", "rd84", "z4ml", "clip", "misex1",
                                 "sao2"}) {
    const auto flat = collapse_network(*circuits::make_benchmark(name));
    if (!flat) continue;
    FlowOptions opts;
    opts.k = 4;
    const FlowResult r = run_flow(*flat, opts);
    const auto p = pack_xc4000(r.network);
    std::printf("%-8s %10u %10u %10u\n", name.c_str(), r.stats.luts, p.clbs,
                p.h_patterns);
  }
}

void ablation_classical() {
  std::printf("\n--- G. combined (IMODEC) vs classical extract-then-map "
              "(paper §1) ---\n");
  std::printf("%-8s %10s %12s\n", "net", "IMODEC", "classical");
  long im = 0, cl = 0;
  for (const auto& name : kCircuits) {
    const auto net = circuits::make_benchmark(name);
    Network mapped;
    SynthesisConfig a;
    const DriverReport ra = run_synthesis(*net, a, mapped, g_pool);
    SynthesisConfig b;
    b.classical = true;
    const DriverReport rb = run_synthesis(*net, b, mapped, g_pool);
    std::printf("%-8s %10u %12u%s\n", name.c_str(), ra.clbs.clbs,
                rb.clbs.clbs,
                (ra.verified && rb.verified) ? "" : "  VERIFY-FAIL");
    im += ra.clbs.clbs;
    cl += rb.clbs.clbs;
  }
  std::printf("%-8s %10ld %12ld  (combined should win: the paper's thesis)\n",
              "sum", im, cl);
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = obs::strip_json_flag(argc, argv);
  const auto threads = obs::strip_threads_flag(argc, argv);
  const bool obs_on = obs::strip_obs_flag(argc, argv);
  const auto report_dir = obs::strip_report_dir_flag(argc, argv);
  if (obs_on || report_dir) obs::set_enabled(true);
  obs::BenchJson sink("ablation");
  if (json_path) g_sink = &sink;

  g_threads = threads.value_or(1);
  if (g_threads == 0) g_threads = std::thread::hardware_concurrency();
  std::optional<util::ThreadPool> pool;
  if (g_threads > 1) {
    pool.emplace(g_threads);
    g_pool = &*pool;
  }

  std::printf("=== Ablations (design choices of DESIGN.md §3) ===\n\n");
  ablation_strict();
  ablation_output_partitioning();
  ablation_preferable();
  ablation_bound_size();
  ablation_sifting();
  ablation_xc4000();
  ablation_classical();
  if (json_path) {
    if (!sink.write(*json_path)) {
      std::fprintf(stderr, "bench_ablation: cannot write %s\n",
                   json_path->c_str());
      return 1;
    }
    std::printf("wrote %s (%zu records)\n", json_path->c_str(),
                sink.num_records());
  }
  if (report_dir && !obs::write_obs_report(*report_dir, "ablation")) {
    std::fprintf(stderr, "bench_ablation: cannot write obs report under %s\n",
                 report_dir->c_str());
    return 1;
  }
  return 0;
}
