file(REMOVE_RECURSE
  "CMakeFiles/imodec_cli.dir/imodec_cli.cpp.o"
  "CMakeFiles/imodec_cli.dir/imodec_cli.cpp.o.d"
  "imodec"
  "imodec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
