# Empty dependencies file for imodec_cli.
# This may be replaced when dependencies are built.
