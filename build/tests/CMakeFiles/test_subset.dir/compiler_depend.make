# Empty compiler generated dependencies file for test_subset.
# This may be replaced when dependencies are built.
