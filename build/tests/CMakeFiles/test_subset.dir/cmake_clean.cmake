file(REMOVE_RECURSE
  "CMakeFiles/test_subset.dir/test_subset.cpp.o"
  "CMakeFiles/test_subset.dir/test_subset.cpp.o.d"
  "test_subset"
  "test_subset.pdb"
  "test_subset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
