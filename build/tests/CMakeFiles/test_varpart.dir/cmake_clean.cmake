file(REMOVE_RECURSE
  "CMakeFiles/test_varpart.dir/test_varpart.cpp.o"
  "CMakeFiles/test_varpart.dir/test_varpart.cpp.o.d"
  "test_varpart"
  "test_varpart.pdb"
  "test_varpart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_varpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
