# Empty compiler generated dependencies file for test_varpart.
# This may be replaced when dependencies are built.
