# Empty dependencies file for test_lmax.
# This may be replaced when dependencies are built.
