file(REMOVE_RECURSE
  "CMakeFiles/test_lmax.dir/test_lmax.cpp.o"
  "CMakeFiles/test_lmax.dir/test_lmax.cpp.o.d"
  "test_lmax"
  "test_lmax.pdb"
  "test_lmax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
