file(REMOVE_RECURSE
  "CMakeFiles/test_cube.dir/test_cube.cpp.o"
  "CMakeFiles/test_cube.dir/test_cube.cpp.o.d"
  "test_cube"
  "test_cube.pdb"
  "test_cube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
