file(REMOVE_RECURSE
  "CMakeFiles/test_xc3000.dir/test_xc3000.cpp.o"
  "CMakeFiles/test_xc3000.dir/test_xc3000.cpp.o.d"
  "test_xc3000"
  "test_xc3000.pdb"
  "test_xc3000[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xc3000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
