# Empty dependencies file for test_xc3000.
# This may be replaced when dependencies are built.
