# Empty dependencies file for test_truthtable.
# This may be replaced when dependencies are built.
