file(REMOVE_RECURSE
  "CMakeFiles/test_truthtable.dir/test_truthtable.cpp.o"
  "CMakeFiles/test_truthtable.dir/test_truthtable.cpp.o.d"
  "test_truthtable"
  "test_truthtable.pdb"
  "test_truthtable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truthtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
