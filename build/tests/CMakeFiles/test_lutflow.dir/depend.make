# Empty dependencies file for test_lutflow.
# This may be replaced when dependencies are built.
