file(REMOVE_RECURSE
  "CMakeFiles/test_lutflow.dir/test_lutflow.cpp.o"
  "CMakeFiles/test_lutflow.dir/test_lutflow.cpp.o.d"
  "test_lutflow"
  "test_lutflow.pdb"
  "test_lutflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lutflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
