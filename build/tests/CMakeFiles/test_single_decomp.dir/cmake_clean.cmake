file(REMOVE_RECURSE
  "CMakeFiles/test_single_decomp.dir/test_single_decomp.cpp.o"
  "CMakeFiles/test_single_decomp.dir/test_single_decomp.cpp.o.d"
  "test_single_decomp"
  "test_single_decomp.pdb"
  "test_single_decomp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
