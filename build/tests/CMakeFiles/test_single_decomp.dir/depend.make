# Empty dependencies file for test_single_decomp.
# This may be replaced when dependencies are built.
