# Empty dependencies file for test_minimize.
# This may be replaced when dependencies are built.
