file(REMOVE_RECURSE
  "CMakeFiles/test_minimize.dir/test_minimize.cpp.o"
  "CMakeFiles/test_minimize.dir/test_minimize.cpp.o.d"
  "test_minimize"
  "test_minimize.pdb"
  "test_minimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
