file(REMOVE_RECURSE
  "CMakeFiles/test_xc4000.dir/test_xc4000.cpp.o"
  "CMakeFiles/test_xc4000.dir/test_xc4000.cpp.o.d"
  "test_xc4000"
  "test_xc4000.pdb"
  "test_xc4000[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xc4000.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
