# Empty dependencies file for test_xc4000.
# This may be replaced when dependencies are built.
