file(REMOVE_RECURSE
  "CMakeFiles/test_classes.dir/test_classes.cpp.o"
  "CMakeFiles/test_classes.dir/test_classes.cpp.o.d"
  "test_classes"
  "test_classes.pdb"
  "test_classes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
