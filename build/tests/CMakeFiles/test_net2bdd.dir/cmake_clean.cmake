file(REMOVE_RECURSE
  "CMakeFiles/test_net2bdd.dir/test_net2bdd.cpp.o"
  "CMakeFiles/test_net2bdd.dir/test_net2bdd.cpp.o.d"
  "test_net2bdd"
  "test_net2bdd.pdb"
  "test_net2bdd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net2bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
