# Empty dependencies file for test_net2bdd.
# This may be replaced when dependencies are built.
