file(REMOVE_RECURSE
  "CMakeFiles/test_add.dir/test_add.cpp.o"
  "CMakeFiles/test_add.dir/test_add.cpp.o.d"
  "test_add"
  "test_add.pdb"
  "test_add[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_add.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
