# Empty dependencies file for test_add.
# This may be replaced when dependencies are built.
