# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_add[1]_include.cmake")
include("/root/repo/build/tests/test_truthtable[1]_include.cmake")
include("/root/repo/build/tests/test_cube[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_classes[1]_include.cmake")
include("/root/repo/build/tests/test_single_decomp[1]_include.cmake")
include("/root/repo/build/tests/test_varpart[1]_include.cmake")
include("/root/repo/build/tests/test_subset[1]_include.cmake")
include("/root/repo/build/tests/test_chi[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_paper_example[1]_include.cmake")
include("/root/repo/build/tests/test_counting[1]_include.cmake")
include("/root/repo/build/tests/test_lutflow[1]_include.cmake")
include("/root/repo/build/tests/test_xc3000[1]_include.cmake")
include("/root/repo/build/tests/test_circuits[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_lmax[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_reorder[1]_include.cmake")
include("/root/repo/build/tests/test_xc4000[1]_include.cmake")
include("/root/repo/build/tests/test_simplify[1]_include.cmake")
include("/root/repo/build/tests/test_minimize[1]_include.cmake")
include("/root/repo/build/tests/test_algebra[1]_include.cmake")
include("/root/repo/build/tests/test_net2bdd[1]_include.cmake")
