# Empty compiler generated dependencies file for shared_logic.
# This may be replaced when dependencies are built.
