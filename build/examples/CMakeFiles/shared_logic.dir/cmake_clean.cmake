file(REMOVE_RECURSE
  "CMakeFiles/shared_logic.dir/shared_logic.cpp.o"
  "CMakeFiles/shared_logic.dir/shared_logic.cpp.o.d"
  "shared_logic"
  "shared_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
