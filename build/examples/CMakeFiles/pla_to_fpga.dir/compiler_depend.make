# Empty compiler generated dependencies file for pla_to_fpga.
# This may be replaced when dependencies are built.
