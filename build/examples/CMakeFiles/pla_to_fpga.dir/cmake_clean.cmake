file(REMOVE_RECURSE
  "CMakeFiles/pla_to_fpga.dir/pla_to_fpga.cpp.o"
  "CMakeFiles/pla_to_fpga.dir/pla_to_fpga.cpp.o.d"
  "pla_to_fpga"
  "pla_to_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pla_to_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
