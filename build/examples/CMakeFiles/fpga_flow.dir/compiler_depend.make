# Empty compiler generated dependencies file for fpga_flow.
# This may be replaced when dependencies are built.
