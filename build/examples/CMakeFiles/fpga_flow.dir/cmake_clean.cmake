file(REMOVE_RECURSE
  "CMakeFiles/fpga_flow.dir/fpga_flow.cpp.o"
  "CMakeFiles/fpga_flow.dir/fpga_flow.cpp.o.d"
  "fpga_flow"
  "fpga_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
