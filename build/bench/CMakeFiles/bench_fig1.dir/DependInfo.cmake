
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1.cpp" "bench/CMakeFiles/bench_fig1.dir/bench_fig1.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1.dir/bench_fig1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/imodec/CMakeFiles/imodec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/imodec_map.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/imodec_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/decomp/CMakeFiles/imodec_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/imodec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/imodec_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/imodec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/imodec_opt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
