file(REMOVE_RECURSE
  "libimodec_map.a"
)
