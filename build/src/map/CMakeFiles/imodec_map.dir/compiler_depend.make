# Empty compiler generated dependencies file for imodec_map.
# This may be replaced when dependencies are built.
