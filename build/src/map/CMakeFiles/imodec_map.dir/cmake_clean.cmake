file(REMOVE_RECURSE
  "CMakeFiles/imodec_map.dir/driver.cpp.o"
  "CMakeFiles/imodec_map.dir/driver.cpp.o.d"
  "CMakeFiles/imodec_map.dir/lutflow.cpp.o"
  "CMakeFiles/imodec_map.dir/lutflow.cpp.o.d"
  "CMakeFiles/imodec_map.dir/restructure.cpp.o"
  "CMakeFiles/imodec_map.dir/restructure.cpp.o.d"
  "CMakeFiles/imodec_map.dir/xc3000.cpp.o"
  "CMakeFiles/imodec_map.dir/xc3000.cpp.o.d"
  "CMakeFiles/imodec_map.dir/xc4000.cpp.o"
  "CMakeFiles/imodec_map.dir/xc4000.cpp.o.d"
  "libimodec_map.a"
  "libimodec_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
