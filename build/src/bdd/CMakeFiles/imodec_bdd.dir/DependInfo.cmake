
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/add.cpp" "src/bdd/CMakeFiles/imodec_bdd.dir/add.cpp.o" "gcc" "src/bdd/CMakeFiles/imodec_bdd.dir/add.cpp.o.d"
  "/root/repo/src/bdd/dot.cpp" "src/bdd/CMakeFiles/imodec_bdd.dir/dot.cpp.o" "gcc" "src/bdd/CMakeFiles/imodec_bdd.dir/dot.cpp.o.d"
  "/root/repo/src/bdd/manager.cpp" "src/bdd/CMakeFiles/imodec_bdd.dir/manager.cpp.o" "gcc" "src/bdd/CMakeFiles/imodec_bdd.dir/manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/imodec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
