file(REMOVE_RECURSE
  "libimodec_bdd.a"
)
