file(REMOVE_RECURSE
  "CMakeFiles/imodec_bdd.dir/add.cpp.o"
  "CMakeFiles/imodec_bdd.dir/add.cpp.o.d"
  "CMakeFiles/imodec_bdd.dir/dot.cpp.o"
  "CMakeFiles/imodec_bdd.dir/dot.cpp.o.d"
  "CMakeFiles/imodec_bdd.dir/manager.cpp.o"
  "CMakeFiles/imodec_bdd.dir/manager.cpp.o.d"
  "libimodec_bdd.a"
  "libimodec_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
