# Empty compiler generated dependencies file for imodec_bdd.
# This may be replaced when dependencies are built.
