
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imodec/chi.cpp" "src/imodec/CMakeFiles/imodec_core.dir/chi.cpp.o" "gcc" "src/imodec/CMakeFiles/imodec_core.dir/chi.cpp.o.d"
  "/root/repo/src/imodec/counting.cpp" "src/imodec/CMakeFiles/imodec_core.dir/counting.cpp.o" "gcc" "src/imodec/CMakeFiles/imodec_core.dir/counting.cpp.o.d"
  "/root/repo/src/imodec/engine.cpp" "src/imodec/CMakeFiles/imodec_core.dir/engine.cpp.o" "gcc" "src/imodec/CMakeFiles/imodec_core.dir/engine.cpp.o.d"
  "/root/repo/src/imodec/lmax.cpp" "src/imodec/CMakeFiles/imodec_core.dir/lmax.cpp.o" "gcc" "src/imodec/CMakeFiles/imodec_core.dir/lmax.cpp.o.d"
  "/root/repo/src/imodec/subset.cpp" "src/imodec/CMakeFiles/imodec_core.dir/subset.cpp.o" "gcc" "src/imodec/CMakeFiles/imodec_core.dir/subset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/decomp/CMakeFiles/imodec_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/imodec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/imodec_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/imodec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
