file(REMOVE_RECURSE
  "libimodec_core.a"
)
