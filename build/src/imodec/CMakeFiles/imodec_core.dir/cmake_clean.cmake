file(REMOVE_RECURSE
  "CMakeFiles/imodec_core.dir/chi.cpp.o"
  "CMakeFiles/imodec_core.dir/chi.cpp.o.d"
  "CMakeFiles/imodec_core.dir/counting.cpp.o"
  "CMakeFiles/imodec_core.dir/counting.cpp.o.d"
  "CMakeFiles/imodec_core.dir/engine.cpp.o"
  "CMakeFiles/imodec_core.dir/engine.cpp.o.d"
  "CMakeFiles/imodec_core.dir/lmax.cpp.o"
  "CMakeFiles/imodec_core.dir/lmax.cpp.o.d"
  "CMakeFiles/imodec_core.dir/subset.cpp.o"
  "CMakeFiles/imodec_core.dir/subset.cpp.o.d"
  "libimodec_core.a"
  "libimodec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
