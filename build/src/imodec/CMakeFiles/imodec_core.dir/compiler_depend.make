# Empty compiler generated dependencies file for imodec_core.
# This may be replaced when dependencies are built.
