# CMake generated Testfile for 
# Source directory: /root/repo/src/imodec
# Build directory: /root/repo/build/src/imodec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
