file(REMOVE_RECURSE
  "CMakeFiles/imodec_circuits.dir/gates.cpp.o"
  "CMakeFiles/imodec_circuits.dir/gates.cpp.o.d"
  "CMakeFiles/imodec_circuits.dir/generators.cpp.o"
  "CMakeFiles/imodec_circuits.dir/generators.cpp.o.d"
  "CMakeFiles/imodec_circuits.dir/registry.cpp.o"
  "CMakeFiles/imodec_circuits.dir/registry.cpp.o.d"
  "CMakeFiles/imodec_circuits.dir/synthetic.cpp.o"
  "CMakeFiles/imodec_circuits.dir/synthetic.cpp.o.d"
  "libimodec_circuits.a"
  "libimodec_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
