
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuits/gates.cpp" "src/circuits/CMakeFiles/imodec_circuits.dir/gates.cpp.o" "gcc" "src/circuits/CMakeFiles/imodec_circuits.dir/gates.cpp.o.d"
  "/root/repo/src/circuits/generators.cpp" "src/circuits/CMakeFiles/imodec_circuits.dir/generators.cpp.o" "gcc" "src/circuits/CMakeFiles/imodec_circuits.dir/generators.cpp.o.d"
  "/root/repo/src/circuits/registry.cpp" "src/circuits/CMakeFiles/imodec_circuits.dir/registry.cpp.o" "gcc" "src/circuits/CMakeFiles/imodec_circuits.dir/registry.cpp.o.d"
  "/root/repo/src/circuits/synthetic.cpp" "src/circuits/CMakeFiles/imodec_circuits.dir/synthetic.cpp.o" "gcc" "src/circuits/CMakeFiles/imodec_circuits.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/imodec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/imodec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/imodec_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
