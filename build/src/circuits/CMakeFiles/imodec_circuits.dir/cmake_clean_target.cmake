file(REMOVE_RECURSE
  "libimodec_circuits.a"
)
