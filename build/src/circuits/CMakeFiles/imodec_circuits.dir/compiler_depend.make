# Empty compiler generated dependencies file for imodec_circuits.
# This may be replaced when dependencies are built.
