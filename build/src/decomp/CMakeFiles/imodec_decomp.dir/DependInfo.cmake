
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decomp/chart.cpp" "src/decomp/CMakeFiles/imodec_decomp.dir/chart.cpp.o" "gcc" "src/decomp/CMakeFiles/imodec_decomp.dir/chart.cpp.o.d"
  "/root/repo/src/decomp/classes.cpp" "src/decomp/CMakeFiles/imodec_decomp.dir/classes.cpp.o" "gcc" "src/decomp/CMakeFiles/imodec_decomp.dir/classes.cpp.o.d"
  "/root/repo/src/decomp/single.cpp" "src/decomp/CMakeFiles/imodec_decomp.dir/single.cpp.o" "gcc" "src/decomp/CMakeFiles/imodec_decomp.dir/single.cpp.o.d"
  "/root/repo/src/decomp/types.cpp" "src/decomp/CMakeFiles/imodec_decomp.dir/types.cpp.o" "gcc" "src/decomp/CMakeFiles/imodec_decomp.dir/types.cpp.o.d"
  "/root/repo/src/decomp/varpart.cpp" "src/decomp/CMakeFiles/imodec_decomp.dir/varpart.cpp.o" "gcc" "src/decomp/CMakeFiles/imodec_decomp.dir/varpart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/imodec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/imodec_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/imodec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
