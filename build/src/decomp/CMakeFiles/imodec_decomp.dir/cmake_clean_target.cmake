file(REMOVE_RECURSE
  "libimodec_decomp.a"
)
