file(REMOVE_RECURSE
  "CMakeFiles/imodec_decomp.dir/chart.cpp.o"
  "CMakeFiles/imodec_decomp.dir/chart.cpp.o.d"
  "CMakeFiles/imodec_decomp.dir/classes.cpp.o"
  "CMakeFiles/imodec_decomp.dir/classes.cpp.o.d"
  "CMakeFiles/imodec_decomp.dir/single.cpp.o"
  "CMakeFiles/imodec_decomp.dir/single.cpp.o.d"
  "CMakeFiles/imodec_decomp.dir/types.cpp.o"
  "CMakeFiles/imodec_decomp.dir/types.cpp.o.d"
  "CMakeFiles/imodec_decomp.dir/varpart.cpp.o"
  "CMakeFiles/imodec_decomp.dir/varpart.cpp.o.d"
  "libimodec_decomp.a"
  "libimodec_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
