# Empty compiler generated dependencies file for imodec_decomp.
# This may be replaced when dependencies are built.
