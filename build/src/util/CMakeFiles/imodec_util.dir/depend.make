# Empty dependencies file for imodec_util.
# This may be replaced when dependencies are built.
