file(REMOVE_RECURSE
  "libimodec_util.a"
)
