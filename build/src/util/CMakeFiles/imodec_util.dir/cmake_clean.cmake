file(REMOVE_RECURSE
  "CMakeFiles/imodec_util.dir/bigfloat.cpp.o"
  "CMakeFiles/imodec_util.dir/bigfloat.cpp.o.d"
  "CMakeFiles/imodec_util.dir/bitvec.cpp.o"
  "CMakeFiles/imodec_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/imodec_util.dir/combinatorics.cpp.o"
  "CMakeFiles/imodec_util.dir/combinatorics.cpp.o.d"
  "CMakeFiles/imodec_util.dir/rng.cpp.o"
  "CMakeFiles/imodec_util.dir/rng.cpp.o.d"
  "CMakeFiles/imodec_util.dir/strings.cpp.o"
  "CMakeFiles/imodec_util.dir/strings.cpp.o.d"
  "libimodec_util.a"
  "libimodec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
