file(REMOVE_RECURSE
  "CMakeFiles/imodec_logic.dir/blif.cpp.o"
  "CMakeFiles/imodec_logic.dir/blif.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/cube.cpp.o"
  "CMakeFiles/imodec_logic.dir/cube.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/minimize.cpp.o"
  "CMakeFiles/imodec_logic.dir/minimize.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/net2bdd.cpp.o"
  "CMakeFiles/imodec_logic.dir/net2bdd.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/network.cpp.o"
  "CMakeFiles/imodec_logic.dir/network.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/pla.cpp.o"
  "CMakeFiles/imodec_logic.dir/pla.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/simplify.cpp.o"
  "CMakeFiles/imodec_logic.dir/simplify.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/simulate.cpp.o"
  "CMakeFiles/imodec_logic.dir/simulate.cpp.o.d"
  "CMakeFiles/imodec_logic.dir/truthtable.cpp.o"
  "CMakeFiles/imodec_logic.dir/truthtable.cpp.o.d"
  "libimodec_logic.a"
  "libimodec_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
