# Empty dependencies file for imodec_logic.
# This may be replaced when dependencies are built.
