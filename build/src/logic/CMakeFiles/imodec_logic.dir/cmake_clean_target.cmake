file(REMOVE_RECURSE
  "libimodec_logic.a"
)
