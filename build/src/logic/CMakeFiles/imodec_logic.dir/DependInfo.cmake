
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/blif.cpp" "src/logic/CMakeFiles/imodec_logic.dir/blif.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/blif.cpp.o.d"
  "/root/repo/src/logic/cube.cpp" "src/logic/CMakeFiles/imodec_logic.dir/cube.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/cube.cpp.o.d"
  "/root/repo/src/logic/minimize.cpp" "src/logic/CMakeFiles/imodec_logic.dir/minimize.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/minimize.cpp.o.d"
  "/root/repo/src/logic/net2bdd.cpp" "src/logic/CMakeFiles/imodec_logic.dir/net2bdd.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/net2bdd.cpp.o.d"
  "/root/repo/src/logic/network.cpp" "src/logic/CMakeFiles/imodec_logic.dir/network.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/network.cpp.o.d"
  "/root/repo/src/logic/pla.cpp" "src/logic/CMakeFiles/imodec_logic.dir/pla.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/pla.cpp.o.d"
  "/root/repo/src/logic/simplify.cpp" "src/logic/CMakeFiles/imodec_logic.dir/simplify.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/simplify.cpp.o.d"
  "/root/repo/src/logic/simulate.cpp" "src/logic/CMakeFiles/imodec_logic.dir/simulate.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/simulate.cpp.o.d"
  "/root/repo/src/logic/truthtable.cpp" "src/logic/CMakeFiles/imodec_logic.dir/truthtable.cpp.o" "gcc" "src/logic/CMakeFiles/imodec_logic.dir/truthtable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/imodec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/imodec_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
