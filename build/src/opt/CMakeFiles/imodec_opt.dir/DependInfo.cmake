
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/algebra.cpp" "src/opt/CMakeFiles/imodec_opt.dir/algebra.cpp.o" "gcc" "src/opt/CMakeFiles/imodec_opt.dir/algebra.cpp.o.d"
  "/root/repo/src/opt/extract.cpp" "src/opt/CMakeFiles/imodec_opt.dir/extract.cpp.o" "gcc" "src/opt/CMakeFiles/imodec_opt.dir/extract.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/imodec_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/imodec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/imodec_bdd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
