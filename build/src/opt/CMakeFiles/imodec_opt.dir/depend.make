# Empty dependencies file for imodec_opt.
# This may be replaced when dependencies are built.
