file(REMOVE_RECURSE
  "CMakeFiles/imodec_opt.dir/algebra.cpp.o"
  "CMakeFiles/imodec_opt.dir/algebra.cpp.o.d"
  "CMakeFiles/imodec_opt.dir/extract.cpp.o"
  "CMakeFiles/imodec_opt.dir/extract.cpp.o.d"
  "libimodec_opt.a"
  "libimodec_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imodec_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
