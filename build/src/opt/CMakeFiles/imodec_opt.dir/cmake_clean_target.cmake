file(REMOVE_RECURSE
  "libimodec_opt.a"
)
